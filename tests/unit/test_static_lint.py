"""Unit tests for the workload linter (repro.static.lint)."""

import pytest

from repro.layout import INT, StructType
from repro.layout.address_space import Allocation
from repro.program import Access, Function, Loop, WorkloadBuilder, affine
from repro.static import RULES, Suppression, lint_program, lint_workload
from tests.conftest import build_figure1

PAIR = StructType("pair", [("x", INT), ("y", INT)])


def build(body_fn, *, count=64, struct=PAIR, extra_arrays=()):
    builder = WorkloadBuilder("lintcase")
    builder.add_aos(struct, count, name="A", call_path=("main",))
    for name in extra_arrays:
        builder.add_scalar(name, INT, count, call_path=("main",))
    return builder.build([Function("main", body_fn())])


def rules_of(report):
    return sorted({f.rule for f in report.findings})


class TestCleanPrograms:
    def test_figure1_is_clean(self):
        report = lint_program(build_figure1())
        assert report.findings == []
        assert report.ok(strict=True)
        assert "clean" in report.render()

    def test_rule_catalog_is_complete(self):
        report = lint_program(build_figure1())
        assert report.findings == []
        # Every severity used anywhere comes from the documented catalog.
        assert set(RULES) >= {
            "oob-index", "unbound-var", "overlapping-objects",
            "write-race", "dead-field", "short-trip",
        }


class TestErrorRules:
    def test_oob_index_flagged(self):
        report = build(lambda: [
            Loop(line=1, var="i", start=0, stop=128, body=[
                Access(line=2, array="A", field="x", index=affine("i")),
                Access(line=3, array="A", field="y", index=affine("i", 1, -1)),
            ]),
        ])
        findings = lint_program(report).errors
        assert {f.rule for f in findings} == {"oob-index"}
        assert len(findings) == 2  # over the top and below zero

    def test_unbound_var_flagged(self):
        report = lint_program(build(lambda: [
            Loop(line=1, var="i", start=0, stop=8, body=[
                Access(line=2, array="A", field="x", index=affine("nope")),
                Access(line=3, array="A", field="y", index=affine("i")),
            ]),
        ]))
        assert "unbound-var" in rules_of(report)

    def test_overlapping_objects_flagged(self):
        bound = build_figure1()
        first = bound.space.allocations[0]
        # The bump allocator cannot produce overlap; inject a forged
        # allocation record to model a corrupted address space.
        rogue = Allocation("rogue", first.base + 4, first.size, "heap", ())
        bound.space._allocations.append(rogue)
        bound.space._starts.append(rogue.base)
        report = lint_program(bound)
        assert "overlapping-objects" in rules_of(report)

    def test_parallel_write_ignoring_loop_var_is_a_race(self):
        report = lint_program(build(lambda: [
            Loop(line=1, var="i", start=0, stop=64, parallel=True, body=[
                Access(line=2, array="A", field="x",
                       index=affine("i", 0, 3), is_write=True),
            ]),
        ]))
        races = [f for f in report.errors if f.rule == "write-race"]
        assert len(races) == 1
        assert "same elements" in races[0].message

    def test_parallel_write_through_serial_inner_loop_is_a_race(self):
        report = lint_program(build(lambda: [
            Loop(line=1, var="t", start=0, stop=4, parallel=True, body=[
                Loop(line=2, var="j", start=0, stop=64, body=[
                    Access(line=3, array="A", field="x",
                           index=affine("j"), is_write=True),
                ]),
            ]),
        ]))
        assert "write-race" in rules_of(report)

    def test_non_injective_parallel_write_is_a_race(self):
        report = lint_program(build(lambda: [
            Loop(line=1, var="i", start=0, stop=64, parallel=True, body=[
                Access(line=2, array="A", field="x",
                       index=affine("i", 2, 0), is_write=True),
            ]),
        ], count=128))
        # 2i over 64 iterations yields 64 distinct indices == trip count:
        # injective, no race. Modulo-collapsed index below IS a race.
        assert "write-race" not in rules_of(report)
        from repro.program import Mod

        report = lint_program(build(lambda: [
            Loop(line=1, var="i", start=0, stop=64, parallel=True, body=[
                Access(line=2, array="A", field="x",
                       index=Mod(affine("i"), 8), is_write=True),
            ]),
        ]))
        assert "write-race" in rules_of(report)

    def test_parallel_read_is_not_a_race(self):
        report = lint_program(build(lambda: [
            Loop(line=1, var="i", start=0, stop=64, parallel=True, body=[
                Access(line=2, array="A", field="x", index=affine("i", 0, 3)),
            ]),
        ]))
        assert "write-race" not in rules_of(report)


class TestWarningRules:
    def test_dead_field_flagged(self):
        report = lint_program(build(lambda: [
            Loop(line=1, var="i", start=0, stop=64, body=[
                Access(line=2, array="A", field="x", index=affine("i")),
            ]),
        ]))
        dead = [f for f in report.warnings if f.rule == "dead-field"]
        assert [f.subject for f in dead] == ["A.y"]
        assert report.ok()  # warnings only
        assert not report.ok(strict=True)

    def test_short_trip_flagged(self):
        report = lint_program(build(lambda: [
            Loop(line=1, var="i", start=0, stop=4, body=[
                Access(line=2, array="A", field="x", index=affine("i")),
                Access(line=3, array="A", field="y", index=affine("i")),
            ]),
        ]))
        short = [f for f in report.warnings if f.rule == "short-trip"]
        assert len(short) == 2
        assert "k>=10" in short[0].message

    def test_constant_index_is_not_short_trip(self):
        from repro.program import Const

        report = lint_program(build(lambda: [
            Loop(line=1, var="i", start=0, stop=64, body=[
                Access(line=2, array="A", field="x", index=affine("i")),
                Access(line=3, array="A", field="y", index=Const(0)),
            ]),
        ]))
        assert "short-trip" not in rules_of(report)


class TestSuppressions:
    def build_with_dead_field(self):
        return build(lambda: [
            Loop(line=1, var="i", start=0, stop=64, body=[
                Access(line=2, array="A", field="x", index=affine("i")),
            ]),
        ])

    def test_matching_suppression_moves_finding_aside(self):
        supp = Suppression("dead-field", "A.y", "intentional cold field")
        report = lint_program(self.build_with_dead_field(),
                              suppressions=(supp,))
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.ok(strict=True)
        assert "intentional cold field" in report.render()

    def test_glob_subjects_match(self):
        supp = Suppression("dead-field", "A.*", "whole array is scratch")
        report = lint_program(self.build_with_dead_field(),
                              suppressions=(supp,))
        assert report.findings == []

    def test_wrong_rule_does_not_suppress(self):
        supp = Suppression("short-trip", "A.y", "mismatched rule")
        report = lint_program(self.build_with_dead_field(),
                              suppressions=(supp,))
        assert [f.rule for f in report.findings] == ["dead-field"]

    def build_with_two_escape_sites(self):
        from repro.program import AddrOf, Call, Const, PtrAccess

        builder = WorkloadBuilder("lintcase")
        builder.add_aos(PAIR, 64, name="A", call_path=("main",))
        main = Function("main", [
            AddrOf(line=2, dest="p", array="A", field="x", index=Const(0)),
            Call(line=3, callee="sink", args=("p",)),
            AddrOf(line=4, dest="q", array="A", field="x", index=Const(1)),
            Call(line=5, callee="sink", args=("q",)),
        ])
        sink = Function("sink", [PtrAccess(line=11, ptr="p", size=4),
                                 PtrAccess(line=12, ptr="q", size=4)],
                        line=10)
        return builder.build([main, sink])

    def test_location_pins_suppression_to_one_site(self):
        # A suppression written for the main:3 escape must NOT hide the
        # new escape of the same subject at main:5.
        supp = Suppression("addr-escape", "A.x", "first escape is known",
                           location="main:3")
        report = lint_program(self.build_with_two_escape_sites(),
                              suppressions=(supp,))
        escapes = [f for f in report.findings if f.rule == "addr-escape"]
        assert [f.line for f in escapes] == [5]
        assert [f.line for f, _ in report.suppressed] == [3]

    def test_default_location_matches_any_site(self):
        supp = Suppression("addr-escape", "A.x", "all escapes acknowledged")
        report = lint_program(self.build_with_two_escape_sites(),
                              suppressions=(supp,))
        assert "addr-escape" not in rules_of(report)
        assert len(report.suppressed) == 2

    def test_location_glob(self):
        supp = Suppression("addr-escape", "A.x", "everything in main",
                           location="main:*")
        report = lint_program(self.build_with_two_escape_sites(),
                              suppressions=(supp,))
        assert "addr-escape" not in rules_of(report)

    def test_wrong_location_does_not_suppress(self):
        supp = Suppression("addr-escape", "A.x", "somewhere else",
                           location="helper:3")
        report = lint_program(self.build_with_two_escape_sites(),
                              suppressions=(supp,))
        escapes = [f for f in report.findings if f.rule == "addr-escape"]
        assert len(escapes) == 2


class TestBundledWorkloads:
    @pytest.mark.parametrize("name", [
        "179.ART", "462.libquantum", "CLOMP 1.2", "Health", "Mser", "NN",
        "TSP",
    ])
    def test_every_table2_workload_lints_strict_clean(self, name):
        from repro.workloads import TABLE2_WORKLOADS

        report = lint_workload(TABLE2_WORKLOADS[name](scale=0.05))
        assert report.ok(strict=True), report.render()

    def test_regrouping_workload_lints_clean(self):
        from repro.workloads import RegroupingWorkload

        report = lint_workload(RegroupingWorkload(scale=0.05))
        assert report.ok(strict=True), report.render()
