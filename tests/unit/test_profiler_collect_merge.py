"""Unit tests for sample collection, profile merging, and the Monitor."""

import pytest

from repro.binary import LoopMap
from repro.profiler import (
    MERGED_THREAD,
    DataObjectRegistry,
    Monitor,
    ProfileCollector,
    ThreadProfile,
    merge_pair,
    reduction_tree_merge,
)
from repro.profiler.merge import MergeStats
from repro.sampling import AddressSample

from ..conftest import build_figure1


@pytest.fixture
def figure1_env():
    bound = build_figure1(n=512)
    return (
        bound,
        DataObjectRegistry.from_address_space(bound.space),
        LoopMap(bound.program),
    )


def sample(bound, thread, ip, address, latency, line=5, context=0):
    return AddressSample(0, thread, ip, address, 4, False, latency, line, context)


class TestProfileCollector:
    def test_attribution_to_object_and_loop(self, figure1_env):
        bound, registry, loop_map = figure1_env
        collector = ProfileCollector(registry, loop_map, program_name="figure1")
        acc = bound.program.accesses()[0]  # Arr.a in first loop
        arr = bound.bindings.resolve("Arr", "a")[0]
        collector.observe_sample(
            sample(bound, 0, acc.ip, arr.field_address(3, "a"), 42.0)
        )
        profile = collector.profiles[0]
        assert profile.sample_count == 1
        assert profile.total_latency == 42.0
        (identity,) = profile.data_latency
        assert identity[-1] == "Arr"
        (stream,) = profile.streams.values()
        assert stream.loop_id is not None
        assert loop_map.loop(stream.loop_id).line_range == (4, 5)
        assert stream.data_base == arr.base

    def test_unattributed_address_counted_separately(self, figure1_env):
        bound, registry, loop_map = figure1_env
        collector = ProfileCollector(registry, loop_map)
        acc = bound.program.accesses()[0]
        collector.observe_sample(sample(bound, 0, acc.ip, 0x1, 9.0))
        profile = collector.profiles[0]
        assert profile.unattributed_latency == 9.0
        assert not profile.streams

    def test_threads_isolated(self, figure1_env):
        bound, registry, loop_map = figure1_env
        collector = ProfileCollector(registry, loop_map)
        acc = bound.program.accesses()[0]
        arr = bound.bindings.resolve("Arr", "a")[0]
        for thread in (0, 1, 0):
            collector.observe_sample(
                sample(bound, thread, acc.ip, arr.field_address(0, "a"), 1.0)
            )
        assert collector.profiles[0].sample_count == 2
        assert collector.profiles[1].sample_count == 1


class TestMerge:
    def _profile(self, thread, addrs, key=(1, 0, ("heap", "A"))):
        profile = ThreadProfile(thread=thread)
        s = profile.stream(*key)
        for addr in addrs:
            s.update(addr, 1.0)
        profile.total_latency = float(len(addrs))
        profile.sample_count = len(addrs)
        profile.add_data_latency(key[2], float(len(addrs)))
        return profile

    def test_pair_merge_sums_and_gcds(self):
        merged = merge_pair(self._profile(0, [0, 128]), self._profile(1, [64, 256]))
        assert merged.sample_count == 4
        assert merged.total_latency == 4.0
        (stream,) = merged.streams.values()
        assert stream.stride == 64
        assert merged.data_latency[("heap", "A")] == 4.0

    def test_disjoint_streams_both_survive(self):
        a = self._profile(0, [0, 64], key=(1, 0, ("heap", "A")))
        b = self._profile(1, [0, 32], key=(2, 0, ("heap", "B")))
        merged = merge_pair(a, b)
        assert len(merged.streams) == 2

    def test_tree_merge_is_order_insensitive(self):
        profiles = [self._profile(t, [t * 64, t * 64 + 256]) for t in range(5)]
        forward = reduction_tree_merge(profiles)
        backward = reduction_tree_merge(list(reversed(profiles)))
        assert forward.sample_count == backward.sample_count
        key = (1, 0, ("heap", "A"))
        assert forward.streams[key].stride == backward.streams[key].stride

    def test_single_profile_merge(self):
        merged = reduction_tree_merge([self._profile(0, [0, 64])])
        assert merged.sample_count == 2

    def test_single_profile_merge_is_faithful_copy(self):
        original = self._profile(3, [0, 64])
        original.program = "figure1"
        stats = MergeStats()
        merged = reduction_tree_merge([original], stats=stats)
        # Not a merge: thread id and program survive untouched, and the
        # stats record a degenerate tree rather than a fabricated merge
        # against an empty profile.
        assert merged.thread == 3
        assert merged.program == "figure1"
        assert (stats.leaves, stats.depth, stats.pair_merges) == (1, 0, 0)
        assert merged.sample_count == original.sample_count
        assert merged.total_latency == original.total_latency
        assert merged.data_latency == original.data_latency

    def test_single_profile_merge_copy_is_independent(self):
        original = self._profile(0, [0, 64])
        merged = reduction_tree_merge([original])
        key = (1, 0, ("heap", "A"))
        merged.streams[key].update(8192, 1.0)
        merged.add_data_latency(("heap", "A"), 5.0)
        assert original.streams[key].sample_count == 2
        assert original.data_latency[("heap", "A")] == 2.0

    def test_real_merge_relabels_thread(self):
        merged = merge_pair(self._profile(0, [0]), self._profile(1, [64]))
        assert merged.thread == MERGED_THREAD

    def test_merge_pair_program_takes_lexicographic_min(self):
        a, b = self._profile(0, [0]), self._profile(1, [64])
        a.program, b.program = "zeta", "alpha"
        assert merge_pair(a, b).program == "alpha"
        assert merge_pair(b, a).program == "alpha"

    def test_merge_pair_program_empty_never_wins(self):
        a, b = self._profile(0, [0]), self._profile(1, [64])
        a.program, b.program = "", "beta"
        assert merge_pair(a, b).program == "beta"
        assert merge_pair(b, a).program == "beta"

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            reduction_tree_merge([])


class TestMonitor:
    def test_profiled_run_is_complete(self, small_config):
        bound = build_figure1(n=2048)
        monitor = Monitor(sampling_period=64)
        run = monitor.run(bound, config=small_config)
        assert run.sample_count > 10
        assert run.merged.sample_count == run.sample_count
        assert run.metrics.accesses == 3 * 2 * 2048
        assert run.overhead_percent > 0
        assert run.monitored_cycles > run.metrics.cycles

    def test_overhead_priced_at_deployment_period(self, small_config):
        bound = build_figure1(n=2048)
        dense = Monitor(sampling_period=64, deployment_period=10_000)
        raw = Monitor(sampling_period=64, deployment_period=None)
        priced = dense.run(bound, config=small_config).overhead_percent
        unpriced = raw.run(bound, config=small_config).overhead_percent
        # Dense analysis sampling must not inflate the reported overhead.
        assert priced < unpriced

    def test_unmonitored_run_matches_monitored_metrics(self, small_config):
        bound = build_figure1(n=2048)
        monitor = Monitor(sampling_period=64)
        monitored = monitor.run(bound, config=small_config).metrics
        plain = monitor.run_unmonitored(bound, config=small_config)
        assert monitored.cycles == plain.cycles
        assert monitored.l1_misses == plain.l1_misses

    def test_sampler_seed_controls_samples(self, small_config):
        bound = build_figure1(n=2048)
        a = Monitor(sampling_period=64, seed=1).run(bound, config=small_config)
        b = Monitor(sampling_period=64, seed=1).run(bound, config=small_config)
        c = Monitor(sampling_period=64, seed=2).run(bound, config=small_config)
        assert a.sample_count == b.sample_count
        assert a.sample_count != c.sample_count or True  # counts may tie...
        # ...but the sampled addresses must differ for a different seed.
        addr = lambda run: [s.min_address for s in run.merged.streams.values()]
        assert addr(a) == addr(b)
