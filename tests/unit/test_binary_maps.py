"""Unit tests for SymbolTable, LineMap, and LoopMap."""

import pytest

from repro.binary import LineMap, LoopMap, Symbol, SymbolTable
from repro.layout import AddressSpace, INT, StructType
from repro.program import Access, Compute, Function, Loop, WorkloadBuilder, affine


class TestSymbolTable:
    def test_from_address_space_keeps_only_static(self):
        space = AddressSpace()
        space.allocate("heap_obj", 64)
        space.allocate("global_arr", 128, segment="static")
        table = SymbolTable.from_address_space(space)
        assert len(table) == 1
        assert table.lookup("global_arr") is not None
        assert table.lookup("heap_obj") is None

    def test_find_by_address(self):
        table = SymbolTable((Symbol("a", 100, 10), Symbol("b", 200, 10)))
        assert table.find(105).name == "a"
        assert table.find(199) is None
        assert table.find(200).name == "b"
        assert table.find(50) is None

    def test_add_keeps_sorted_order(self):
        table = SymbolTable((Symbol("b", 200, 10),))
        table.add(Symbol("a", 100, 10))
        assert [s.name for s in table] == ["a", "b"]
        assert table.find(101).name == "a"


def build_sample():
    st = StructType("s", [("x", INT)])
    builder = WorkloadBuilder("t")
    builder.add_aos(st, 8, name="A")
    inner = Loop(line=20, var="j", start=0, stop=2, end_line=22, body=[
        Access(line=21, array="A", field="x", index=affine("j")),
    ])
    outer = Loop(line=10, var="i", start=0, stop=2, end_line=23, body=[
        Compute(line=11, cycles=1.0),
        inner,
    ])
    return builder.build([Function("main", [Compute(line=1, cycles=1.0), outer])])


class TestLineMap:
    def test_ip_to_line_and_function(self):
        bound = build_sample()
        lines = LineMap(bound.program)
        for fname, stmt in bound.program.walk():
            assert lines.line_of(stmt.ip) == stmt.line
            assert lines.function_of(stmt.ip) == fname
        assert lines.line_of(0x1) is None
        assert lines.location(0x1) == (None, None)

    def test_len_counts_statements(self):
        bound = build_sample()
        assert len(LineMap(bound.program)) == len(list(bound.program.walk()))


class TestLoopMap:
    def test_access_attributed_to_innermost_loop(self):
        bound = build_sample()
        loop_map = LoopMap(bound.program)
        access = bound.program.accesses()[0]
        loop = loop_map.loop_of_ip(access.ip)
        assert loop is not None
        assert loop.line_range == (20, 22)
        assert loop.depth == 2

    def test_toplevel_code_is_outside_loops(self):
        bound = build_sample()
        loop_map = LoopMap(bound.program)
        top = bound.program.functions["main"].body[0]
        assert loop_map.loop_of_ip(top.ip) is None

    def test_nesting_parent_links(self):
        bound = build_sample()
        loop_map = LoopMap(bound.program)
        access = bound.program.accesses()[0]
        inner = loop_map.loop_of_ip(access.ip)
        assert inner.parent is not None
        outer = loop_map.loop(inner.parent)
        assert outer.line_range[0] == 10
        assert outer.depth == 1

    def test_label_format(self):
        bound = build_sample()
        loop_map = LoopMap(bound.program)
        labels = {d.label for d in loop_map.loops}
        assert "20-22" in labels

    def test_loop_count_matches_ir(self):
        bound = build_sample()
        assert len(LoopMap(bound.program)) == len(bound.program.loops())
