"""Regression net over the public API surface.

Downstream code imports from the package roots; this test freezes the
promises so a refactor cannot silently drop them.
"""

import pytest

import repro


class TestTopLevelAPI:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize("name", [
        "Monitor", "OfflineAnalyzer", "OptimizationResult", "ProfiledRun",
        "AnalysisReport", "StructureAdvice", "SplitPlan", "StructType",
        "HierarchyConfig", "MemoryHierarchy", "RunMetrics",
        "PEBSLoadLatencySampler", "IBSSampler", "SamplingEngine",
        "ThreadProfile", "apply_split", "derive_plans", "gcd_stride",
        "optimize", "simulate",
    ])
    def test_core_names_exported(self, name):
        assert hasattr(repro, name), name
        assert name in repro.__all__

    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestSubpackageAPI:
    @pytest.mark.parametrize("module,names", [
        ("repro.layout", ["StructType", "SplitPlan", "ArrayOfStructs",
                          "apply_split", "maximal_plan", "identity_plan"]),
        ("repro.program", ["WorkloadBuilder", "Interpreter", "parse_workload",
                           "Loop", "Access", "MemoryAccess"]),
        ("repro.binary", ["find_loops", "LoopMap", "SymbolTable",
                          "emit_structure", "parse_structure"]),
        ("repro.memsim", ["MemoryHierarchy", "SetAssociativeCache",
                          "MESIDirectory", "TLBConfig", "simulate",
                          "speedup", "miss_reduction"]),
        ("repro.sampling", ["PEBSLoadLatencySampler", "IBSSampler",
                            "DEARSampler", "OverheadModel", "save_samples",
                            "load_samples"]),
        ("repro.profiler", ["Monitor", "ThreadProfile",
                            "reduction_tree_merge", "profile_processes",
                            "DataObjectRegistry"]),
        ("repro.core", ["OfflineAnalyzer", "optimize", "derive_plans",
                        "gcd_stride", "compute_affinities",
                        "recommend_regrouping", "write_outputs",
                        "code_centric_view", "data_centric_view"]),
        ("repro.baselines", ["FrequencyAffinityProfiler", "AslopProfiler",
                             "ReuseDistanceProfiler",
                             "BurstySamplingProfiler"]),
        ("repro.workloads", ["ArtWorkload", "TABLE2_WORKLOADS",
                             "all_workloads", "RegroupingWorkload"]),
        ("repro.experiments", ["run_all", "table3", "table4",
                               "run_art_analysis", "run_suite_overheads",
                               "run_accuracy_sweep",
                               "run_complete_evaluation"]),
    ])
    def test_subpackage_exports(self, module, names):
        import importlib

        mod = importlib.import_module(module)
        for name in names:
            assert hasattr(mod, name), f"{module}.{name}"

    def test_every_public_item_has_a_docstring(self):
        import importlib
        import inspect

        for module_name in ("repro.layout", "repro.program", "repro.binary",
                            "repro.memsim", "repro.sampling", "repro.profiler",
                            "repro.core", "repro.baselines", "repro.workloads",
                            "repro.experiments"):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
