"""Unit tests for Eqs 5-7: structure size, offsets, affinities."""

import pytest

from repro.core import (
    compute_affinities,
    field_offset,
    loop_offset_table,
    loop_share_rows,
    object_total_latency,
    recover_struct,
    structure_size,
)
from repro.core.attribution import LoopAccessEntry
from repro.profiler import StreamState, ThreadProfile

IDENTITY = ("heap", "Arr")


def stream_with(ip, base, addrs, latency_each=1.0, loop_id=0):
    s = StreamState(key=(ip, 0, IDENTITY))
    s.data_base = base
    s.loop_id = loop_id
    for addr in addrs:
        s.update(addr, latency_each)
    return s


class TestStructureSize:
    def test_eq5_gcd_of_stream_strides(self):
        a = stream_with(1, 0, [0, 64, 128])        # stride 64
        b = stream_with(2, 0, [8, 104, 200])       # stride 96
        assert structure_size([a, b]) == 32

    def test_single_stream(self):
        assert structure_size([stream_with(1, 0, [0, 48])]) == 48

    def test_no_streams_is_zero(self):
        assert structure_size([]) == 0


class TestFieldOffset:
    def test_eq6_offset_mod_size(self):
        s = stream_with(1, 1000, [1000 + 8 + 64 * 5])
        assert field_offset(s, 64) == 8

    def test_requires_positive_size(self):
        with pytest.raises(ValueError):
            field_offset(stream_with(1, 0, [0]), 0)

    def test_requires_sampled_address(self):
        empty = StreamState(key=(1, 0, IDENTITY))
        with pytest.raises(ValueError):
            field_offset(empty, 64)


class TestRecoverStruct:
    def _profile(self, base=0x10000):
        profile = ThreadProfile(thread=0)
        profile.streams.update({
            s.key: s
            for s in [
                stream_with(1, base, [base + 0, base + 64, base + 192]),
                stream_with(2, base, [base + 8 + 64 * k for k in (1, 4, 6)]),
                # A lone sample: no stride vote, but offset attribution.
                stream_with(3, base, [base + 16 + 64 * 3]),
            ]
        })
        return profile

    def test_size_and_offsets_recovered(self):
        recovered = recover_struct(self._profile(), IDENTITY)
        assert recovered is not None
        assert recovered.size == 64
        assert recovered.offsets == [0, 8, 16]

    def test_latency_lands_on_fields(self):
        recovered = recover_struct(self._profile(), IDENTITY)
        assert recovered.fields[0].latency == 3.0
        assert recovered.fields[16].latency == 1.0
        assert recovered.latency_share(0) == pytest.approx(3 / 7)

    def test_no_strided_evidence_returns_none(self):
        profile = ThreadProfile(thread=0)
        unit = stream_with(1, 0, [0, 1, 2, 3])
        profile.streams[unit.key] = unit
        assert recover_struct(profile, IDENTITY) is None

    def test_unknown_identity_returns_none(self):
        assert recover_struct(ThreadProfile(thread=0), IDENTITY) is None


class TestLoopTable:
    def _profile(self):
        profile = ThreadProfile(thread=0)
        streams = [
            stream_with(1, 0, [0, 64], latency_each=10.0, loop_id=0),
            stream_with(2, 0, [8, 72], latency_each=5.0, loop_id=0),
            stream_with(3, 0, [8, 136], latency_each=2.0, loop_id=1),
        ]
        profile.streams.update({s.key: s for s in streams})
        return profile

    def test_aggregation_per_loop_and_offset(self):
        table = loop_offset_table(self._profile(), IDENTITY, 64)
        assert set(table) == {0, 1}
        assert table[0].offset_latency == {0: 20.0, 8: 10.0}
        assert table[1].offset_latency == {8: 4.0}
        assert object_total_latency(table) == 34.0

    def test_share_rows_sorted_by_heat(self):
        rows = loop_share_rows(loop_offset_table(self._profile(), IDENTITY, 64))
        assert rows[0][1] > rows[1][1]
        assert rows[0][2] == [0, 8]


class TestAffinityEq7:
    def _table(self, entries):
        """entries: {loop_id: {offset: latency}}"""
        table = {}
        for loop_id, offsets in entries.items():
            entry = LoopAccessEntry(loop_id, str(loop_id), (0, 0))
            for offset, latency in offsets.items():
                entry.add(offset, latency)
            table[loop_id] = entry
        return table

    def test_always_together_is_one(self):
        table = self._table({0: {0: 10.0, 8: 5.0}, 1: {0: 2.0, 8: 2.0}})
        affinity = compute_affinities(table)
        assert affinity.affinity(0, 8) == pytest.approx(1.0)

    def test_never_together_is_zero(self):
        table = self._table({0: {0: 10.0}, 1: {8: 10.0}})
        assert compute_affinities(table).affinity(0, 8) == 0.0

    def test_paper_art_iu_arithmetic(self):
        # Paper §6.1: I and U share loop 545-548 (10.83%); totals are
        # I=5.5%, U=7.1% -> A_IU = 10.83 / 12.6 = 0.86.
        table = self._table({
            545: {0: 5.26, 32: 5.57},   # I and U together
            615: {40: 73.3},            # P alone
            1015: {0: 0.24},            # I alone
            131: {32: 1.53},            # U elsewhere
        })
        affinity = compute_affinities(table)
        assert affinity.affinity(0, 32) == pytest.approx(0.86, abs=0.01)

    def test_paper_art_pu_arithmetic(self):
        # P and U co-occur only in small loops: A_PU ~ 0.05.
        table = self._table({
            131: {32: 0.8, 40: 0.79},
            589: {32: 1.12, 40: 1.13},
            615: {40: 56.57},
            607: {40: 14.4},
            545: {32: 5.2},
        })
        affinity = compute_affinities(table)
        assert affinity.affinity(32, 40) == pytest.approx(0.05, abs=0.01)

    def test_self_affinity_is_one(self):
        table = self._table({0: {0: 1.0}})
        assert compute_affinities(table).affinity(0, 0) == 1.0

    def test_pairs_sorted_descending(self):
        table = self._table({0: {0: 5.0, 8: 5.0}, 1: {8: 5.0, 16: 5.0, 0: 0.0}})
        pairs = compute_affinities(table).pairs()
        values = [v for _, _, v in pairs]
        assert values == sorted(values, reverse=True)

    def test_strongest_partner(self):
        table = self._table({0: {0: 10.0, 8: 10.0}, 1: {0: 1.0, 16: 1.0}})
        affinity = compute_affinities(table)
        partner, value = affinity.strongest_partner(0)
        assert partner == 8
        assert value > affinity.affinity(0, 16)
