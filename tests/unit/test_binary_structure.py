"""Unit tests for the hpcstruct-style structure file."""

import pytest

from repro.binary import LoopMap, emit_structure, parse_structure
from repro.workloads import ArtWorkload, TspWorkload


@pytest.fixture(scope="module")
def art_structure():
    bound = ArtWorkload(scale=0.02).build_original()
    xml = emit_structure(bound.program)
    return bound, xml, parse_structure(xml)


class TestEmit:
    def test_xml_shape(self, art_structure):
        _, xml, _ = art_structure
        assert xml.startswith("<Structure")
        assert "<Function" in xml and "<Loop" in xml and "<Statement" in xml

    def test_program_name_recorded(self, art_structure):
        _, _, parsed = art_structure
        assert parsed.program == "179.ART"


class TestRoundTrip:
    def test_every_statement_survives(self, art_structure):
        bound, _, parsed = art_structure
        for _, stmt in bound.program.walk():
            assert parsed.line_of_ip(stmt.ip) == stmt.line

    def test_loop_attribution_matches_loopmap(self, art_structure):
        bound, _, parsed = art_structure
        loop_map = LoopMap(bound.program)
        for access in bound.program.accesses():
            direct = loop_map.loop_of_ip(access.ip)
            from_file = parsed.loop_of_ip(access.ip)
            if direct is None:
                assert from_file is None
            else:
                assert from_file is not None
                assert from_file.line_range == direct.line_range
                assert from_file.depth == direct.depth

    def test_loop_count_preserved(self, art_structure):
        bound, _, parsed = art_structure
        assert len(parsed.loops) == len(bound.program.loops())

    def test_paper_loop_labels_present(self, art_structure):
        _, _, parsed = art_structure
        labels = {l.label for l in parsed.loops.values()}
        assert "615-616" in labels
        assert "545-548" in labels

    def test_nesting_parents_preserved(self):
        bound = TspWorkload(scale=0.02).build_original()
        parsed = parse_structure(emit_structure(bound.program))
        depths = {l.depth for l in parsed.loops.values()}
        assert depths == {1, 2}
        inner = [l for l in parsed.loops.values() if l.depth == 2]
        assert all(l.parent is not None for l in inner)


class TestValidation:
    def test_rejects_non_structure_xml(self):
        with pytest.raises(ValueError):
            parse_structure("<NotAStructure/>")
