"""Unit tests for the forward-dataflow framework (static/dataflow.py)."""

import pytest

from repro.binary.cfg import ControlFlowGraph
from repro.layout import INT, StructType
from repro.program import (
    AddrOf,
    Call,
    Const,
    Function,
    Loop,
    PtrAccess,
    WorkloadBuilder,
    affine,
)
from repro.static import (
    AnalysisContext,
    ForwardAnalysis,
    available_passes,
    register_pass,
    reverse_postorder,
    run_pass,
    solve_forward,
)
from repro.static.safety import PointsToAnalysis

PAIR = StructType("pair", [("a", INT), ("b", INT)])


def diamond():
    """entry -> (left | right) -> merge."""
    cfg = ControlFlowGraph("diamond")
    entry = cfg.new_block(label="entry")
    left = cfg.new_block(label="left")
    right = cfg.new_block(label="right")
    merge = cfg.new_block(label="merge")
    cfg.add_edge(entry, left)
    cfg.add_edge(entry, right)
    cfg.add_edge(left, merge)
    cfg.add_edge(right, merge)
    return cfg, (entry, left, right, merge)


class LabelUnion(ForwardAnalysis):
    """Toy lattice: the set of block labels on some path to the block."""

    def boundary(self, cfg):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, block, fact):
        return fact | {block.label}


class TestReversePostorder:
    def test_diamond_orders_entry_first_merge_last(self):
        cfg, (entry, left, right, merge) = diamond()
        order = reverse_postorder(cfg)
        assert order[0] is entry
        assert order[-1] is merge
        assert {b.id for b in order} == {0, 1, 2, 3}

    def test_unreachable_blocks_dropped(self):
        cfg, _ = diamond()
        cfg.new_block(label="island")
        assert len(reverse_postorder(cfg)) == 4

    def test_empty_cfg(self):
        assert reverse_postorder(ControlFlowGraph("empty")) == []


class TestSolveForward:
    def test_diamond_merge_joins_both_paths(self):
        cfg, (entry, left, right, merge) = diamond()
        result = solve_forward(cfg, LabelUnion())
        assert result.in_of(merge) == {"entry", "left", "right"}
        assert result.out_of(merge) == {"entry", "left", "right", "merge"}
        assert result.in_of(left) == {"entry"}

    def test_loop_reaches_fixed_point(self):
        cfg = ControlFlowGraph("loop")
        entry = cfg.new_block(label="entry")
        head = cfg.new_block(label="head")
        body = cfg.new_block(label="body")
        exit_ = cfg.new_block(label="exit")
        cfg.add_edge(entry, head)
        cfg.add_edge(head, body)
        cfg.add_edge(body, head)  # back edge
        cfg.add_edge(head, exit_)
        result = solve_forward(cfg, LabelUnion())
        # The body's label flows around the back edge into the header.
        assert result.in_of(head) == {"entry", "head", "body"}
        assert result.in_of(exit_) == {"entry", "head", "body"}
        assert result.iterations >= len(cfg)

    def test_unreachable_block_has_no_facts(self):
        cfg, _ = diamond()
        island = cfg.new_block(label="island")
        result = solve_forward(cfg, LabelUnion())
        assert result.in_of(island) is None
        assert result.out_of(island) is None


def bound_with_pointer():
    builder = WorkloadBuilder("df")
    builder.add_aos(PAIR, 8, name="A")
    body = [
        Loop(line=2, var="i", start=0, stop=4, body=[
            AddrOf(line=3, dest="p", array="A", field="a", index=affine("i")),
            PtrAccess(line=4, ptr="p"),
        ]),
        Call(line=6, callee="helper", args=("p",)),
    ]
    helper = Function("helper", [PtrAccess(line=11, ptr="p")], line=10)
    return builder.build([Function("main", body, line=1), helper])


class TestPointsToOverLoweredCfg:
    def test_pointer_defined_inside_loop_reaches_exit(self):
        bound = bound_with_pointer()
        ctx = AnalysisContext(bound)
        cfg = ctx.cfg("main")
        result = solve_forward(cfg, PointsToAnalysis(bound.program))
        # At the function's last block, p may hold &A[...].a (bound in
        # the loop) or be undefined (zero-trip path joins in).
        last = max(
            (b for b in cfg.blocks if result.out_of(b) is not None),
            key=lambda b: max(b.ips) if b.ips else -1,
        )
        targets = result.out_of(last)["p"]
        assert ("A", "a") in targets


class TestAnalysisContext:
    def test_artifacts_are_cached(self):
        ctx = AnalysisContext(bound_with_pointer())
        assert ctx.cfg("main") is ctx.cfg("main")
        assert ctx.loop_map is ctx.loop_map
        assert ctx.static_report is ctx.static_report

    def test_num_threads_default(self):
        ctx = AnalysisContext(bound_with_pointer())
        assert ctx.num_threads == 1


class TestPassRegistry:
    def test_builtin_passes_registered(self):
        assert {"absint", "safety", "falseshare"} <= set(available_passes())

    def test_run_pass_dispatches(self):
        ctx = AnalysisContext(bound_with_pointer())
        report = run_pass("absint", ctx)
        assert report is ctx.static_report
        safety = run_pass("safety", ctx)
        assert "A" in safety.verdicts

    def test_unknown_pass_rejected(self):
        ctx = AnalysisContext(bound_with_pointer())
        with pytest.raises(KeyError, match="unknown pass"):
            run_pass("nonesuch", ctx)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_pass("absint")(lambda ctx: None)
