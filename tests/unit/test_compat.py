"""The 3.9-floor slots helper and the hot classes that use it."""

import sys

import pytest

from repro._compat import DATACLASS_SLOTS, effective_cpu_count, \
    slotted_dataclass
from repro.memsim.cache import SetAssociativeCache
from repro.memsim.engine import CostModel
from repro.profiler.online import StreamState
from repro.program import AccessBatch
from repro.program.trace import ComputeBurst, MemoryAccess
from repro.sampling.events import AddressSample

ON_310 = sys.version_info >= (3, 10)


class TestSlottedDataclass:
    def test_flag_matches_interpreter(self):
        assert DATACLASS_SLOTS == ON_310

    def test_helper_builds_a_working_dataclass(self):
        @slotted_dataclass()
        class Point:
            x: int = 0
            y: int = 1

        p = Point(x=3)
        assert (p.x, p.y) == (3, 1)
        if ON_310:
            assert not hasattr(p, "__dict__")

    def test_frozen_passthrough(self):
        @slotted_dataclass(frozen=True)
        class Frozen:
            value: int = 0

        with pytest.raises(Exception):
            Frozen().value = 1


class TestEffectiveCpuCount:
    def test_positive_and_bounded_by_cpu_count(self):
        import os

        count = effective_cpu_count()
        assert count >= 1
        assert count <= (os.cpu_count() or count)

    def test_honors_affinity_when_available(self):
        import os

        if hasattr(os, "sched_getaffinity"):
            assert effective_cpu_count() == len(os.sched_getaffinity(0))


@pytest.mark.skipif(not ON_310, reason="slots=True needs Python 3.10+")
class TestHotClassesAreSlotted:
    def test_stream_state_has_no_dict(self):
        state = StreamState(key=(1, 2, ("main",)))
        assert not hasattr(state, "__dict__")

    def test_cost_model_has_no_dict(self):
        assert not hasattr(CostModel(), "__dict__")

    def test_cache_has_no_dict(self):
        cache = SetAssociativeCache("L1", 32 * 1024, 8)
        assert not hasattr(cache, "__dict__")


class TestPerAccessRecordsAreDictless:
    """The per-access records never carry a per-instance ``__dict__``
    on any supported Python: NamedTuples by construction, AccessBatch
    via an explicit ``__slots__``."""

    def test_trace_records(self):
        assert not hasattr(MemoryAccess(0, 0, 0, 4, False, 1, 0), "__dict__")
        assert not hasattr(ComputeBurst(0, 1.0), "__dict__")

    def test_sample_record(self):
        sample = AddressSample(0, 0, 0, 0, 4, False, 1.0, 1, 0)
        assert not hasattr(sample, "__dict__")

    def test_access_batch_declares_slots(self):
        assert "__slots__" in AccessBatch.__dict__
        assert "__dict__" not in dir(AccessBatch)
