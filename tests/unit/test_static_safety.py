"""Unit tests for the split-safety verifier (static/safety.py)."""

from repro.layout import INT, StructType
from repro.program import (
    Access,
    AddrOf,
    Call,
    Const,
    Function,
    Loop,
    PtrAccess,
    WorkloadBuilder,
    affine,
)
from repro.static import (
    SAFE,
    UNKNOWN,
    UNSAFE,
    AnalysisContext,
    collect_hazards,
    verify_split_safety,
)

PAIR = StructType("pair", [("a", INT), ("b", INT)])


def build(body, *, extra_functions=(), extra_arrays=(), alias=None):
    builder = WorkloadBuilder("safety")
    aos = builder.add_aos(PAIR, 16, name="A")
    for name in extra_arrays:
        builder.add_aos(PAIR, 16, name=name)
    if alias:
        name, field = alias
        builder.bindings.bind_alias(name, aos, field)
    functions = [Function("main", body, line=1)] + list(extra_functions)
    return builder.build(functions)


def hazard_kinds(bound):
    return {h.kind for h in collect_hazards(AnalysisContext(bound))}


class TestHazardKinds:
    def test_clean_loop_is_safe(self):
        bound = build([
            Loop(line=2, var="i", start=0, stop=16, body=[
                Access(line=3, array="A", field="a", index=affine("i")),
            ]),
        ])
        report = verify_split_safety(bound)
        assert report.all_safe
        assert report.verdict_for("A").status == SAFE
        assert report.verdict_for("A").reason == "no hazards found"

    def test_addr_escape(self):
        helper = Function("helper", [PtrAccess(line=11, ptr="p")], line=10)
        bound = build([
            AddrOf(line=2, dest="p", array="A", field="a", index=Const(0)),
            Call(line=3, callee="helper", args=("p",)),
        ], extra_functions=[helper])
        assert "addr-escape" in hazard_kinds(bound)
        verdict = verify_split_safety(bound).verdict_for("A")
        assert verdict.status == UNSAFE
        assert "escapes into helper()" in verdict.reason
        assert verdict.site == "main:3"

    def test_whole_record_ptr(self):
        bound = build([
            AddrOf(line=2, dest="p", array="A", field=None, index=Const(0)),
            PtrAccess(line=3, ptr="p", offset=4, size=4),
        ])
        assert "whole-record-ptr" in hazard_kinds(bound)
        assert verify_split_safety(bound).verdict_for("A").status == UNSAFE

    def test_cross_field_ptr(self):
        bound = build([
            AddrOf(line=2, dest="p", array="A", field="a", index=Const(0)),
            PtrAccess(line=3, ptr="p", offset=2, size=4),  # walks into b
        ])
        hazards = collect_hazards(AnalysisContext(bound))
        (hazard,) = [h for h in hazards if h.kind == "cross-field-ptr"]
        assert hazard.array == "A"
        assert set(hazard.fields) == {"a", "b"}
        assert hazard.site == "main:3"

    def test_within_field_ptr_is_benign(self):
        bound = build([
            AddrOf(line=2, dest="p", array="A", field="a", index=Const(0)),
            PtrAccess(line=3, ptr="p", offset=0, size=4),
        ])
        assert hazard_kinds(bound) == set()
        assert verify_split_safety(bound).all_safe

    def test_ptr_undefined_degrades_every_array(self):
        bound = build([
            PtrAccess(line=2, ptr="q"),
        ], extra_arrays=("B",))
        assert "ptr-undefined" in hazard_kinds(bound)
        report = verify_split_safety(bound)
        assert report.verdict_for("A").status == UNKNOWN
        assert report.verdict_for("B").status == UNKNOWN

    def test_aliased_overlapping_views_unsafe(self):
        bound = build([
            Loop(line=2, var="i", start=0, stop=16, body=[
                Access(line=3, array="A", field="a", index=affine("i")),
                Access(line=4, array="A2", field=None, index=affine("i")),
            ]),
        ], alias=("A2", "a"))
        report = verify_split_safety(bound)
        assert report.verdict_for("A").status == UNSAFE
        assert report.verdict_for("A2").status == UNSAFE
        assert "overlapping views" in report.verdict_for("A").reason

    def test_disjoint_field_aliases_stay_safe(self):
        # The regrouping transform's shape: two names bound to
        # *different* fields of one allocation never collide.
        bound = build([
            Loop(line=2, var="i", start=0, stop=16, body=[
                Access(line=3, array="A", field="b", index=affine("i")),
                Access(line=4, array="A2", field=None, index=affine("i")),
            ]),
        ], alias=("A2", "a"))
        assert verify_split_safety(bound).all_safe


class TestInterprocedural:
    def test_pointer_tracked_through_call(self):
        # The escape is flagged at the call; the callee's in-bounds use
        # of the passed pointer must NOT add a ptr-undefined hazard.
        helper = Function("helper", [
            PtrAccess(line=11, ptr="p", offset=0, size=4),
        ], line=10)
        bound = build([
            AddrOf(line=2, dest="p", array="A", field="a", index=Const(0)),
            Call(line=3, callee="helper", args=("p",)),
        ], extra_functions=[helper])
        kinds = hazard_kinds(bound)
        assert "addr-escape" in kinds
        assert "ptr-undefined" not in kinds

    def test_cross_field_deref_in_callee_attributed_there(self):
        helper = Function("helper", [
            PtrAccess(line=11, ptr="p", offset=2, size=4),
        ], line=10)
        bound = build([
            AddrOf(line=2, dest="p", array="A", field="a", index=Const(0)),
            Call(line=3, callee="helper", args=("p",)),
        ], extra_functions=[helper])
        hazards = collect_hazards(AnalysisContext(bound))
        (hazard,) = [h for h in hazards if h.kind == "cross-field-ptr"]
        assert hazard.function == "helper"
        assert hazard.line == 11

    def test_unpassed_pointer_is_undefined_in_callee(self):
        helper = Function("helper", [PtrAccess(line=11, ptr="p")], line=10)
        bound = build([
            AddrOf(line=2, dest="p", array="A", field="a", index=Const(0)),
            Call(line=3, callee="helper"),  # no args: p does not flow
        ], extra_functions=[helper])
        assert "ptr-undefined" in hazard_kinds(bound)


class TestVerdicts:
    def test_unsafe_outranks_unknown(self):
        helper = Function("helper", [PtrAccess(line=11, ptr="p")], line=10)
        bound = build([
            PtrAccess(line=2, ptr="q"),  # UNKNOWN on every array
            AddrOf(line=3, dest="p", array="A", field="a", index=Const(0)),
            Call(line=4, callee="helper", args=("p",)),  # UNSAFE on A
        ], extra_functions=[helper])
        report = verify_split_safety(bound)
        verdict = report.verdict_for("A")
        assert verdict.status == UNSAFE
        # reason/site track the hazard matching the final status.
        assert "escapes" in verdict.reason
        assert verdict.site == "main:4"

    def test_absint_failure_degrades_to_unknown(self):
        bound = build([
            Access(line=2, array="A", field="a", index=affine("z")),
        ])
        report = verify_split_safety(bound)
        verdict = report.verdict_for("A")
        assert verdict.status == UNKNOWN
        assert "static analysis failed" in verdict.reason

    def test_arrays_filter_restricts_verdicts(self):
        bound = build([
            Loop(line=2, var="i", start=0, stop=16, body=[
                Access(line=3, array="A", field="a", index=affine("i")),
            ]),
        ], extra_arrays=("B",))
        report = verify_split_safety(bound, ["A"])
        assert set(report.verdicts) == {"A"}

    def test_report_render_mentions_every_array(self):
        bound = build([
            AddrOf(line=2, dest="p", array="A", field=None, index=Const(0)),
            PtrAccess(line=3, ptr="p"),
        ])
        text = verify_split_safety(bound).render()
        assert "A: UNSAFE" in text
        assert "whole-record-ptr at main:3" in text
