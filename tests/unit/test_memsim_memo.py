"""Unit tests for the steady-state walk memo."""

import random
from array import array

import pytest

np = pytest.importorskip("numpy")

from repro.memsim import memo
from repro.memsim.hierarchy import HierarchyConfig, MemoryHierarchy


def columns(n=512, seed=0, base=0):
    rnd = random.Random(seed)
    addresses = array("q", [base + (rnd.randrange(0, 1 << 14) & ~7)
                            for _ in range(n)])
    sizes = array("q", [8] * n)
    is_write = array("q", [rnd.random() < 0.25 for _ in range(n)])
    thread = array("q", [0] * n)
    return addresses, sizes, is_write, thread


def counters(hier):
    return (
        hier.l1_misses(), hier.l2_misses(), hier.l3_misses(),
        hier.dram_accesses, hier.miss_summary(),
    )


def run_sequence(hier, batches):
    return [list(hier.access_batch(*cols)) for cols in batches]


class TestEquivalence:
    def test_repeated_batches_replay_byte_identically(self, monkeypatch):
        cols = columns()
        batches = [cols] * 6  # same objects: the identity fast path

        monkeypatch.setenv("REPRO_WALK_MEMO", "0")
        plain = MemoryHierarchy(HierarchyConfig(), 1)
        expected = run_sequence(plain, batches)
        assert plain._walk_memo is None

        monkeypatch.setenv("REPRO_WALK_MEMO", "1")
        memoized = MemoryHierarchy(HierarchyConfig(), 1)
        got = run_sequence(memoized, batches)

        assert got == expected
        assert counters(memoized) == counters(plain)
        walk_memo = memoized._walk_memo
        assert walk_memo is not None
        assert walk_memo.hits >= 1  # steady state was reached and used

    def test_interleaved_batches_stay_identical(self, monkeypatch):
        # A, B, A, B, ...: state keeps shifting under each key, so the
        # memo must detect stale fingerprints and fall back to the real
        # walk without changing a byte.
        a = columns(seed=1)
        b = columns(seed=2, base=1 << 15)
        batches = [a, b, a, b, a, a, b, b, a]

        monkeypatch.setenv("REPRO_WALK_MEMO", "0")
        plain = MemoryHierarchy(HierarchyConfig(), 1)
        expected = run_sequence(plain, batches)

        monkeypatch.setenv("REPRO_WALK_MEMO", "1")
        memoized = MemoryHierarchy(HierarchyConfig(), 1)
        got = run_sequence(memoized, batches)

        assert got == expected
        assert counters(memoized) == counters(plain)


class TestMechanics:
    def test_kill_switch_disables_attachment(self, monkeypatch):
        monkeypatch.setenv("REPRO_WALK_MEMO", "0")
        assert not memo.enabled()
        hier = MemoryHierarchy(HierarchyConfig(), 1)
        hier.access_batch(*columns())
        assert hier._walk_memo is None

    def test_small_batches_bypass_the_memo(self, monkeypatch):
        monkeypatch.setenv("REPRO_WALK_MEMO", "1")
        hier = MemoryHierarchy(HierarchyConfig(), 1)
        hier.access_batch(*columns())  # promote + attach
        walk_memo = hier._walk_memo
        before = (walk_memo.hits, walk_memo.misses, walk_memo.recorded)
        small = columns(n=memo.MEMO_MIN_BATCH - 1, seed=3)
        hier.access_batch(*small)
        hier.access_batch(*small)
        assert (walk_memo.hits, walk_memo.misses, walk_memo.recorded) == before

    def test_content_key_matches_across_distinct_objects(self, monkeypatch):
        # Equal column *values* in fresh objects must find the same
        # entry: the key is content-addressed, identity is only a fast
        # path.
        monkeypatch.setenv("REPRO_WALK_MEMO", "1")
        hier = MemoryHierarchy(HierarchyConfig(), 1)
        for _ in range(4):
            hier.access_batch(*columns(seed=4))  # fresh objects each time
        walk_memo = hier._walk_memo
        assert walk_memo.hits >= 1

    def test_capacity_bounds_recorded_entries(self, monkeypatch):
        monkeypatch.setenv("REPRO_WALK_MEMO", "1")
        hier = MemoryHierarchy(HierarchyConfig(), 1)
        hier.access_batch(*columns())  # promote + attach
        hier._walk_memo = walk_memo = memo.WalkMemo(cap=2)
        for seed in range(5):
            hier.access_batch(*columns(n=256, seed=10 + seed))
        assert len(walk_memo.entries) <= 2

    def test_hitless_memo_shuts_itself_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_WALK_MEMO", "1")
        hier = MemoryHierarchy(HierarchyConfig(), 1)
        hier.access_batch(*columns())
        hier._walk_memo = walk_memo = memo.WalkMemo()
        for seed in range(memo.GIVE_UP_RECORDS + 1):
            hier.access_batch(*columns(n=256, seed=100 + seed))
        assert walk_memo.disabled
        assert walk_memo.entries == {} or not walk_memo.entries
