"""Unit tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestListCommand:
    def test_lists_all_seven_workloads(self):
        code, text = run_cli("list")
        assert code == 0
        for name in ("179.ART", "462.libquantum", "TSP", "Mser",
                     "CLOMP 1.2", "Health", "NN"):
            assert name in text

    def test_marks_parallel_benchmarks(self):
        _, text = run_cli("list")
        assert "parallel x4" in text
        assert "sequential" in text


class TestAnalyzeCommand:
    def test_analyze_prints_report_and_overhead(self):
        code, text = run_cli("analyze", "462.libquantum", "--scale", "0.1")
        assert code == 0
        assert "hot data objects" in text
        assert "reg_nodes" in text
        assert "monitoring overhead" in text

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("analyze", "nonexistent")


class TestAnalyzeCheckFlag:
    def test_check_cross_validates_and_passes(self):
        code, text = run_cli("analyze", "462.libquantum", "--scale", "0.1",
                             "--check")
        assert code == 0
        assert "cross-validation" in text
        assert "OK" in text

    def test_check_reports_per_object_sizes(self):
        _, text = run_cli("analyze", "462.libquantum", "--scale", "0.1",
                          "--check")
        assert "size static=16 sampled=16" in text


class TestLintCommand:
    def test_single_workload_lints(self):
        code, text = run_cli("lint", "Health", "--scale", "0.05")
        assert code == 0
        assert "== lint: Health" in text

    def test_all_covers_every_workload_plus_regroup(self):
        code, text = run_cli("lint", "all", "--scale", "0.05")
        assert code == 0
        for name in ("179.ART", "462.libquantum", "TSP", "Mser",
                     "CLOMP 1.2", "Health", "NN", "nbody-soa"):
            assert f"== lint: {name}" in text

    def test_strict_passes_thanks_to_suppressions(self):
        code, text = run_cli("lint", "all", "--scale", "0.05", "--strict")
        assert code == 0
        assert "suppressed[dead-field]" in text

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("lint", "nonexistent")


class TestOptimizeCommand:
    def test_optimize_reports_split_and_speedup(self):
        code, text = run_cli("optimize", "462.libquantum", "--scale", "0.3")
        assert code == 0
        assert "advice: split quantum_reg_node_struct" in text
        assert "speedup:" in text


class TestRegroupCommand:
    def test_regroup_finds_the_interleaving(self):
        code, text = run_cli("regroup", "--scale", "0.35")
        assert code == 0
        assert "regroup [ax, ay, az]" in text
        assert "speedup:" in text


class TestAccuracyCommand:
    def test_accuracy_table_includes_corrected_column(self):
        code, text = run_cli("accuracy", "--trials", "50")
        assert code == 0
        assert "corrected" in text
        assert "lower bound" in text


class TestViewsCommand:
    def test_views_renders_both_pivots(self):
        code, text = run_cli("views", "Mser", "--scale", "0.1")
        assert code == 0
        assert "=== code-centric view ===" in text
        assert "=== data-centric view ===" in text
        assert "forest" in text


class TestSensitivityCommand:
    def test_sweep_renders_table(self):
        code, text = run_cli("sensitivity", "462.libquantum",
                             "--scale", "0.1", "--periods", "101", "1009")
        assert code == 0
        assert "advice matches paper" in text
        assert "101" in text and "1009" in text


class TestAnalyzeJsonMode:
    def test_json_output_parses_with_expected_keys(self):
        code, text = run_cli("analyze", "462.libquantum", "--scale", "0.1",
                             "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["workload"] == "462.libquantum"
        for key in ("pmu", "sampling_period", "deployment_period",
                    "overhead_percent", "overhead_account", "hot", "objects"):
            assert key in payload
        assert payload["pmu"] == "PEBS-LL"
        names = {obj["name"] for obj in payload["objects"]}
        assert "reg_nodes" in names

    def test_json_overhead_account_components_sum(self):
        _, text = run_cli("analyze", "462.libquantum", "--scale", "0.1",
                          "--json")
        account = json.loads(text)["overhead_account"]
        total = sum(account["components_percent"].values())
        assert abs(total - account["overhead_percent"]) < 1e-9

    def test_json_with_check_adds_verdict(self):
        code, text = run_cli("analyze", "462.libquantum", "--scale", "0.1",
                             "--json", "--check")
        assert code == 0
        assert json.loads(text)["cross_validation_ok"] is True


class TestWorkloadAliases:
    def test_aliases_resolve(self):
        from repro.cli import resolve_workload

        assert resolve_workload("art") == "179.ART"
        assert resolve_workload("libquantum") == "462.libquantum"
        assert resolve_workload("clomp") == "CLOMP 1.2"
        assert resolve_workload("tsp") == "TSP"
        assert resolve_workload("179.ART") == "179.ART"
        assert resolve_workload("no-such") is None


class TestTraceCommand:
    def test_trace_writes_telemetry_files(self, tmp_path):
        code, text = run_cli("trace", "libquantum", "--scale", "0.1",
                             "--telemetry", str(tmp_path))
        assert code == 0
        assert "traced 462.libquantum" in text
        assert "stages:" in text
        for stage in ("run", "simulate", "analyze", "split", "re-run"):
            assert stage in text
        for name in ("trace.json", "telemetry.jsonl", "metrics.prom",
                     "overhead.json"):
            assert (tmp_path / name).exists()

    def test_trace_unknown_workload_exits_2(self, tmp_path):
        code, text = run_cli("trace", "bogus", "--telemetry", str(tmp_path))
        assert code == 2
        assert "unknown workload" in text


class TestStatsCommand:
    def test_stats_shows_cache_counters_and_account(self):
        code, text = run_cli("stats", "--scale", "0.1")
        assert code == 0
        assert 'repro_memsim_cache_misses_total{level="L1"}' in text
        assert 'repro_memsim_cache_misses_total{level="L3"}' in text
        assert "self-overhead account:" in text
        assert "overhead (sum)" in text


class TestTelemetryFlag:
    def test_analyze_telemetry_exports_files(self, tmp_path):
        code, text = run_cli("analyze", "462.libquantum", "--scale", "0.1",
                             "--telemetry", str(tmp_path))
        assert code == 0
        assert (tmp_path / "trace.json").exists()
        assert "telemetry files" in text

    def test_optimize_telemetry_exports_files(self, tmp_path):
        code, text = run_cli("optimize", "462.libquantum", "--scale", "0.3",
                             "--telemetry", str(tmp_path))
        assert code == 0
        assert (tmp_path / "trace.json").exists()
        assert "speedup:" in text


class TestLintJsonFormat:
    def test_json_payload_shape(self):
        code, text = run_cli("lint", "Health", "--scale", "0.05",
                             "--format", "json")
        assert code == 0
        payload = json.loads(text)
        assert payload["ok"] is True
        assert payload["strict"] is False
        (report,) = payload["reports"]
        assert report["program"] == "Health"
        assert "findings" in report
        assert "suppressed" in report

    def test_json_all_strict_exit_contract(self):
        code, text = run_cli("lint", "all", "--scale", "0.05", "--strict",
                             "--format", "json")
        assert code == 0
        payload = json.loads(text)
        assert payload["strict_ok"] is True
        names = {r["program"] for r in payload["reports"]}
        assert "AddrEscape" in names
        assert "OverlapView" in names


class TestVerifyCommand:
    def test_single_safe_workload(self):
        code, text = run_cli("verify", "NN", "--scale", "0.05")
        assert code == 0
        assert "SAFE" in text

    def test_adversarial_workload_expected_unsafe(self):
        code, text = run_cli("verify", "AddrEscape", "--scale", "0.05")
        assert code == 0
        assert "UNSAFE, as expected" in text
        assert "main:" in text

    def test_multicore_runs_false_sharing_oracle(self):
        code, text = run_cli("verify", "OverlapView", "--scale", "0.05")
        assert code == 0
        assert "false-sharing oracle" in text
        assert "[OK]" in text


class TestOptimizeVerifyFlag:
    def test_safe_split_is_applied(self):
        code, text = run_cli("optimize", "NN", "--scale", "0.05", "--verify")
        assert code == 0
        assert "split safety: neighbors: SAFE" in text
        assert "speedup:" in text

    def test_unsafe_advice_is_withheld(self):
        code, text = run_cli("optimize", "AddrEscape", "--scale", "0.05",
                             "--verify")
        assert code == 1
        assert "UNSAFE" in text
        assert "withheld (not applied)" in text
        assert "no safe split to apply" in text

    def test_without_verify_unsafe_split_still_applies(self):
        # Documents the hazard --verify exists to close: without the
        # gate, the profitable-but-illegal split goes through.
        code, text = run_cli("optimize", "AddrEscape", "--scale", "0.05")
        assert code == 0
        assert "advice: split packet" in text


class TestListAdversarialMarker:
    def test_adversarial_workloads_are_marked(self):
        code, text = run_cli("list")
        assert code == 0
        assert "AddrEscape" in text
        assert "OverlapView" in text
        assert text.count("[adversarial: split is unsafe]") == 2


class TestParserBasics:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            run_cli()
