"""Unit tests for the hot-data filter (Eq 1) and stream grouping."""

import pytest

from repro.core import (
    NO_LOOP,
    hot_data,
    latency_share,
    rank_data_objects,
    streams_by_loop,
    streams_of,
    strided_streams,
    total_unique_samples,
)
from repro.profiler import ThreadProfile


def make_profile(latencies):
    """latencies: {identity_suffix: latency}."""
    profile = ThreadProfile(thread=0)
    for name, latency in latencies.items():
        profile.add_data_latency(("heap", name), latency)
        profile.total_latency += latency
    return profile


class TestHotData:
    def test_latency_share_is_eq1(self):
        profile = make_profile({"A": 80.0, "B": 20.0})
        assert latency_share(profile, ("heap", "A")) == pytest.approx(0.8)
        assert latency_share(profile, ("heap", "C")) == 0.0

    def test_empty_profile_share_is_zero(self):
        assert latency_share(ThreadProfile(thread=0), ("heap", "A")) == 0.0

    def test_ranking_descends(self):
        profile = make_profile({"A": 10.0, "B": 50.0, "C": 40.0})
        assert [e.name for e in rank_data_objects(profile)] == ["B", "C", "A"]

    def test_top_three_rule(self):
        profile = make_profile({c: float(i + 1) for i, c in enumerate("ABCDE")})
        hot = hot_data(profile, top=3)
        assert [e.name for e in hot] == ["E", "D", "C"]

    def test_min_share_filters_noise(self):
        profile = make_profile({"A": 1000.0, "B": 1.0})
        hot = hot_data(profile, top=3, min_share=0.01)
        assert [e.name for e in hot] == ["A"]

    def test_share_values_sum_sensibly(self):
        profile = make_profile({"A": 30.0, "B": 70.0})
        assert sum(e.share for e in hot_data(profile)) == pytest.approx(1.0)


class TestStreams:
    def _profile(self):
        profile = ThreadProfile(thread=0)
        hot = profile.stream(1, 0, ("heap", "A"))
        for addr in (0, 64, 128):
            hot.update(addr, 1.0)
        hot.loop_id = 7
        unit = profile.stream(2, 0, ("heap", "A"))
        for addr in (0, 1, 2):
            unit.update(addr, 1.0)
        unit.loop_id = 7
        lone = profile.stream(3, 0, ("heap", "A"))
        lone.update(42, 1.0)
        other = profile.stream(4, 0, ("heap", "B"))
        other.update(0, 1.0)
        return profile

    def test_streams_of_filters_identity(self):
        profile = self._profile()
        assert len(streams_of(profile, ("heap", "A"))) == 3
        assert len(streams_of(profile, ("heap", "B"))) == 1

    def test_strided_streams_require_non_unit_stride(self):
        profile = self._profile()
        voters = strided_streams(profile, ("heap", "A"))
        assert len(voters) == 1
        assert voters[0].stride == 64

    def test_min_unique_threshold(self):
        profile = self._profile()
        assert strided_streams(profile, ("heap", "A"), min_unique=4) == []

    def test_streams_by_loop_buckets(self):
        profile = self._profile()
        groups = streams_by_loop(profile, ("heap", "A"))
        assert set(groups) == {7, NO_LOOP}
        assert len(groups[7]) == 2
        assert len(groups[NO_LOOP]) == 1

    def test_total_unique_samples(self):
        profile = self._profile()
        assert total_unique_samples(streams_of(profile, ("heap", "A"))) == 7
