"""Unit tests for the content-addressed trace store."""

import pytest

from repro.layout import INT, StructType
from repro.program import (
    Access,
    AccessBatch,
    Compute,
    Function,
    Interpreter,
    Loop,
    WorkloadBuilder,
    affine,
)
from repro.program.store import (
    TraceStore,
    TraceStoreError,
    session_counters,
    trace_key,
)

PAIR = StructType("pair", [("a", INT), ("b", INT)])


def program(n=16, compute=True):
    """A small nested-loop workload that exercises every chunk kind."""
    builder = WorkloadBuilder("t")
    builder.add_aos(PAIR, max(n, 4), name="A")
    body = [
        Access(line=11, array="A", field="a", index=affine("i")),
        Access(line=12, array="A", field="b", index=affine("i"),
               is_write=True),
    ]
    if compute:
        body.append(Compute(line=13, cycles=2.0))
    loop = Loop(line=10, var="i", start=0, stop=n, body=body)
    outer = Loop(line=9, var="r", start=0, stop=3, body=[loop], end_line=20)
    return builder.build([Function("main", [outer], line=1)])


def expand(items):
    out = []
    for item in items:
        if isinstance(item, AccessBatch):
            out.extend(item)
        else:
            out.append(item)
    return out


def capture_fully(store, key, items):
    """Drive the capture tee to completion and return what it yielded."""
    return list(store.capture(key, items))


class TestContentAddress:
    def test_key_is_stable_and_hexadecimal(self):
        bound = program()
        k1 = trace_key(bound, 1)
        k2 = trace_key(bound, 1)
        assert k1 == k2
        assert len(k1) == 64
        int(k1, 16)

    def test_key_depends_on_threads_and_mode(self):
        bound = program()
        base = trace_key(bound, 1)
        assert trace_key(bound, 2) != base
        assert trace_key(bound, 1, mode="scalar") != base

    def test_key_depends_on_program_shape(self):
        assert trace_key(program(n=16), 1) != trace_key(program(n=17), 1)


class TestRoundtrip:
    @pytest.mark.parametrize("batched", [False, True])
    def test_replay_reproduces_the_item_stream(self, tmp_path, batched):
        bound = program()
        store = TraceStore(tmp_path)
        key = store.key_for(bound, 1, mode="batched" if batched else "scalar")
        interp = Interpreter(bound, num_threads=1)
        original = list(interp.run_batched() if batched else interp.run())
        teed = capture_fully(store, key, iter(original))
        assert teed == original
        assert store.has(key)
        replayed = list(store.replay(key))
        assert expand(replayed) == expand(original)

    def test_repeated_batch_objects_replay_as_one_object(self, tmp_path):
        bound = program(compute=False)
        first = next(
            item
            for item in Interpreter(bound, num_threads=1).run_batched()
            if isinstance(item, AccessBatch)
        )
        store = TraceStore(tmp_path)
        key = "ab" + "0" * 62
        capture_fully(store, key, iter([first, first, first]))
        replayed = list(store.replay(key))
        assert len(replayed) == 3
        assert replayed[0] is replayed[1] is replayed[2]

    def test_abandoned_capture_leaves_nothing(self, tmp_path):
        bound = program()
        store = TraceStore(tmp_path)
        key = store.key_for(bound, 1)
        tee = store.capture(key, Interpreter(bound, num_threads=1).run_batched())
        next(tee)
        tee.close()
        assert not store.has(key)
        assert list(tmp_path.glob("**/*.tmp.*")) == []


class TestVerifyAndCorruption:
    def populated(self, tmp_path):
        bound = program()
        store = TraceStore(tmp_path)
        key = store.key_for(bound, 1)
        original = capture_fully(
            store, key, Interpreter(bound, num_threads=1).run_batched()
        )
        return store, key, original

    def test_verify_returns_header_totals(self, tmp_path):
        store, key, original = self.populated(tmp_path)
        header = store.verify(key)
        assert header["items"] == len(original)
        assert header["accesses"] == sum(
            len(i) if isinstance(i, AccessBatch) else 1
            for i in original
            if not hasattr(i, "cycles")
        )
        assert header["format"] == 1

    def test_verify_rejects_flipped_payload_byte(self, tmp_path):
        store, key, _ = self.populated(tmp_path)
        path = store._path(key)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # inside the last chunk's payload
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceStoreError):
            store.verify(key)

    def test_verify_rejects_truncation_and_bad_magic(self, tmp_path):
        store, key, _ = self.populated(tmp_path)
        path = store._path(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 3])
        with pytest.raises(TraceStoreError):
            store.verify(key)
        path.write_bytes(b"NOPE" + blob[4:])
        with pytest.raises(TraceStoreError):
            store.verify(key)

    def test_fetch_falls_back_to_reinterpret_on_damage(self, tmp_path):
        store, key, original = self.populated(tmp_path)
        path = store._path(key)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        bound = program()
        items, replayed, header = store.fetch(
            key, lambda: Interpreter(bound, num_threads=1).run_batched()
        )
        assert not replayed
        assert header is None
        assert store.errors == 1
        assert expand(list(items)) == expand(original)  # re-captured
        assert store.verify(key)["items"] == len(original)


class TestFetch:
    def test_cold_then_warm(self, tmp_path):
        bound = program()
        store = TraceStore(tmp_path)
        key = store.key_for(bound, 1)
        before = session_counters()

        items, replayed, header = store.fetch(
            key, lambda: Interpreter(bound, num_threads=1).run_batched()
        )
        cold = list(items)
        assert not replayed and header is None

        items, replayed, header = store.fetch(
            key, lambda: pytest.fail("warm fetch must not interpret")
        )
        warm = list(items)
        assert replayed
        assert header["accesses"] > 0
        assert expand(warm) == expand(cold)

        after = session_counters()
        assert after["captures"] == before["captures"] + 1
        assert after["replays"] == before["replays"] + 1
        assert (
            after["interpret_skipped"]
            == before["interpret_skipped"] + header["accesses"]
        )
        assert store.captures == 1 and store.replays == 1


class TestBudget:
    def test_lru_eviction_drops_oldest_first(self, tmp_path):
        import os

        bound = program()
        store = TraceStore(tmp_path)
        old_key = "aa" + "0" * 62
        new_key = "bb" + "0" * 62
        capture_fully(
            store, old_key, Interpreter(bound, num_threads=1).run_batched()
        )
        # Age the first entry so mtime ordering is unambiguous, then
        # shrink the budget so it holds one trace but not two.
        os.utime(store._path(old_key), (1, 1))
        store.max_bytes = store._path(old_key).stat().st_size + 16
        capture_fully(
            store, new_key, Interpreter(bound, num_threads=1).run_batched()
        )
        assert not store.has(old_key)
        assert store.has(new_key)
        assert store.evicted == 1

    def test_stats_reports_contents_and_counters(self, tmp_path):
        bound = program()
        store = TraceStore(tmp_path)
        key = store.key_for(bound, 1)
        capture_fully(
            store, key, Interpreter(bound, num_threads=1).run_batched()
        )
        list(store.replay(key))
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["captures"] == 1
        assert stats["replays"] == 1
        assert stats["root"] == str(tmp_path)
