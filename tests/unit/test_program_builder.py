"""Unit tests for LayoutBinding and WorkloadBuilder."""

import pytest

from repro.layout import DOUBLE, INT, SplitPlan, StructType, apply_split
from repro.program import (
    Access,
    Function,
    LayoutBinding,
    WorkloadBuilder,
    affine,
    memory_accesses,
    run,
)

TRIPLE = StructType("triple", [("a", INT), ("b", INT), ("c", DOUBLE)])


class TestLayoutBinding:
    def test_whole_array_binding_routes_every_field(self):
        builder = WorkloadBuilder("t")
        arr = builder.add_aos(TRIPLE, 8, name="T")
        for field in ("a", "b", "c"):
            aos, resolved = builder.bindings.resolve("T", field)
            assert aos is arr and resolved == field

    def test_scalar_binding_answers_none_field(self):
        builder = WorkloadBuilder("t")
        arr = builder.add_scalar("S", DOUBLE, 8)
        aos, resolved = builder.bindings.resolve("S", None)
        assert aos is arr and resolved == "val"

    def test_missing_binding_raises_with_known_arrays(self):
        binding = LayoutBinding()
        with pytest.raises(KeyError, match="no binding"):
            binding.resolve("ghost", "x")

    def test_split_binding_routes_fields_to_their_group_arrays(self):
        builder = WorkloadBuilder("t", variant="split")
        plan = SplitPlan(TRIPLE.name, (("a", "c"), ("b",)))
        arrays = builder.add_split_aos(apply_split(TRIPLE, plan), 8, name="T")
        aos_a, _ = builder.bindings.resolve("T", "a")
        aos_b, _ = builder.bindings.resolve("T", "b")
        aos_c, _ = builder.bindings.resolve("T", "c")
        assert aos_a is arrays[0] and aos_c is arrays[0]
        assert aos_b is arrays[1]
        assert builder.bindings.backing_arrays("T") == tuple(arrays)

    def test_bind_field_rejects_target_without_field(self):
        builder = WorkloadBuilder("t")
        arr = builder.add_scalar("S", DOUBLE, 8)
        with pytest.raises(KeyError):
            builder.bindings.bind_field("S", "nope", arr)


class TestWorkloadBuilder:
    def test_build_finalizes_and_validates(self):
        builder = WorkloadBuilder("t")
        builder.add_aos(TRIPLE, 8, name="T")
        loop = Access(line=1, array="T", field="a", index=affine("i"))
        from repro.program import Loop

        bound = builder.build([Function("main", [
            Loop(line=1, var="i", start=0, stop=2, body=[loop])
        ])])
        assert bound.program.finalized
        assert bound.name == "t"

    def test_unbound_access_fails_at_build(self):
        builder = WorkloadBuilder("t")
        from repro.program import Loop

        body = [Loop(line=1, var="i", start=0, stop=2, body=[
            Access(line=2, array="ghost", field="x", index=affine("i")),
        ])]
        with pytest.raises(KeyError):
            builder.build([Function("main", body)])

    def test_same_ir_different_layouts_give_different_addresses(self):
        def build(split):
            builder = WorkloadBuilder("t")
            if split:
                plan = SplitPlan(TRIPLE.name, (("a",), ("b", "c")))
                builder.add_split_aos(apply_split(TRIPLE, plan), 8, name="T")
            else:
                builder.add_aos(TRIPLE, 8, name="T")
            from repro.program import Loop

            return builder.build([Function("main", [
                Loop(line=1, var="i", start=0, stop=8, body=[
                    Access(line=2, array="T", field="a", index=affine("i")),
                ])
            ])])

        original = [e.address for e in memory_accesses(run(build(False)))]
        split = [e.address for e in memory_accesses(run(build(True)))]
        # Original walks at the 16-byte struct stride, split at 4 bytes.
        assert original[1] - original[0] == TRIPLE.size
        assert split[1] - split[0] == 4

    def test_invalid_scale_rejected(self):
        from repro.workloads import ArtWorkload

        with pytest.raises(ValueError):
            ArtWorkload(scale=0)
