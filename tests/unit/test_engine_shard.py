"""Unit tests for the set-sharded parallel simulate stage.

The contract under test: :class:`ShardedHierarchy` with the forked
``process`` backend is byte-identical to an in-process
:class:`MemoryHierarchy`, activation is lazy and state-exact, and no
exit path — clean close, interpreter exit, or SIGTERM through
``crash_dump_scope`` — leaves a shard segment behind in ``/dev/shm``.
"""

import contextlib
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.engine import shard as shard_engine
from repro.engine import shm
from repro.engine.shard import ShardedHierarchy
from repro.memsim.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.telemetry import events

np = pytest.importorskip("numpy")

pytestmark = pytest.mark.skipif(
    not shard_engine.shard_mode_available(),
    reason="numpy, multiprocessing.shared_memory, or fork unavailable",
)


def columns(n=2000, seed=7):
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, 1 << 18, size=n, dtype=np.int64)
    sizes = rng.integers(1, 130, size=n, dtype=np.int64)
    return addresses, sizes


def segment_exists(name):
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


class TestByteIdentity:
    def test_batch_walk_matches_local_hierarchy(self):
        config = HierarchyConfig.small()
        addresses, sizes = columns()
        local = MemoryHierarchy(config, 1)
        expected = np.asarray(local.access_batch(addresses, sizes),
                              dtype=np.float64)
        with ShardedHierarchy(config, 1, 4, min_batch=100) as sharded:
            got = np.asarray(sharded.access_batch(addresses, sizes),
                             dtype=np.float64)
            assert np.array_equal(got, expected)
            assert sharded.l1_misses() == local.l1_misses()
            assert sharded.l2_misses() == local.l2_misses()
            assert sharded.l3_misses() == local.l3_misses()
            assert sharded.dram_accesses == local.dram_accesses
            assert sharded.invalidations == local.invalidations

    def test_scalar_access_routes_to_owning_shard(self):
        config = HierarchyConfig.small()
        addresses, sizes = columns(n=500)
        local = MemoryHierarchy(config, 1)
        local.access_batch(addresses, sizes)
        with ShardedHierarchy(config, 1, 4, min_batch=500) as sharded:
            sharded.access_batch(addresses, sizes)  # activates
            # Same line, same-shard split, and a cross-shard split.
            for address, size in ((0, 8), (60, 8), (63, 130), (1 << 12, 300)):
                assert sharded.access(0, address, size, False) == local.access(
                    0, address, size, False
                )
            assert sharded.dram_accesses == local.dram_accesses

    def test_lazy_activation_preserves_warm_state(self):
        """Batches below min_batch walk the local hierarchy; the fork
        then inherits that warm state, so a warmup + big batch sequence
        matches the serial run exactly."""
        config = HierarchyConfig.small()
        warm_a, warm_s = columns(n=200, seed=1)
        big_a, big_s = columns(n=3000, seed=2)
        local = MemoryHierarchy(config, 1)
        expected_warm = np.asarray(local.access_batch(warm_a, warm_s),
                                   dtype=np.float64)
        expected_big = np.asarray(local.access_batch(big_a, big_s),
                                  dtype=np.float64)
        with ShardedHierarchy(config, 1, 2, min_batch=1000) as sharded:
            got_warm = np.asarray(sharded.access_batch(warm_a, warm_s),
                                  dtype=np.float64)
            assert not sharded._active
            got_big = np.asarray(sharded.access_batch(big_a, big_s),
                                 dtype=np.float64)
            assert sharded._active
            assert np.array_equal(got_warm, expected_warm)
            assert np.array_equal(got_big, expected_big)
            assert sharded.dram_accesses == local.dram_accesses

    def test_segments_grow_to_fit_large_batches(self):
        config = HierarchyConfig.small()
        n = ShardedHierarchy.MIN_BYTES // 8 + 4096
        addresses, sizes = columns(n=n)
        local = MemoryHierarchy(config, 1)
        expected = np.asarray(local.access_batch(addresses, sizes),
                              dtype=np.float64)
        with ShardedHierarchy(config, 1, 2, min_batch=100) as sharded:
            got = np.asarray(sharded.access_batch(addresses, sizes),
                             dtype=np.float64)
            assert np.array_equal(got, expected)
            # Growth replaced segments; exactly one per worker is live.
            assert len(shm.live_segment_names()) == 2


class TestStatsAndEvents:
    def test_shard_stats_rollup(self):
        config = HierarchyConfig.small()
        addresses, sizes = columns(n=1500)
        with ShardedHierarchy(config, 1, 4, min_batch=100) as sharded:
            sharded.access_batch(addresses, sizes)
            stats = sharded.shard_stats()
        assert stats["mode"] == "process"
        assert stats["count"] == 4
        assert stats["dispatches"] == 1
        assert stats["sharded_accesses"] == 1500
        assert stats["imbalance"] >= 1.0
        assert len(stats["per_worker"]) == 4
        assert sum(w["walks"] for w in stats["per_worker"]) >= 1

    def test_close_publishes_worker_events(self):
        config = HierarchyConfig.small()
        addresses, sizes = columns(n=1500)
        bus = events.EventBus()
        seen = []
        bus.subscribe(lambda event: seen.append(event))
        with events.use(bus):
            sharded = ShardedHierarchy(config, 1, 2, min_batch=100)
            sharded.access_batch(addresses, sizes)
            sharded.close()
        kinds = [event.type for event in seen]
        assert kinds.count("worker-busy") == 2
        assert kinds.count("shard-imbalance") == 1


class TestCleanup:
    def test_close_unlinks_segments_and_registry(self):
        sharded = ShardedHierarchy(HierarchyConfig.small(), 1, 2,
                                   min_batch=100)
        addresses, sizes = columns(n=500)
        sharded.access_batch(addresses, sizes)
        names = [worker._segment.name for worker in sharded._workers]
        for name in names:
            assert name in shm.live_segment_names()
            assert segment_exists(name)
        sharded.close()
        for name in names:
            assert name not in shm.live_segment_names()
            assert not segment_exists(name)
        sharded.close()  # idempotent

    def test_cleanup_segments_reclaims_everything(self):
        sharded = ShardedHierarchy(HierarchyConfig.small(), 1, 2,
                                   min_batch=100)
        addresses, sizes = columns(n=500)
        sharded.access_batch(addresses, sizes)
        names = [worker._segment.name for worker in sharded._workers]
        assert shm.cleanup_segments() >= 2
        for name in names:
            assert not segment_exists(name)
        # The segments are gone under the workers; retire them too.
        sharded._closed = True
        for worker in sharded._workers:
            worker._conn.close()
            worker._proc.join(timeout=5.0)


CHILD = textwrap.dedent(
    """
    import sys, time
    import numpy as np
    from repro.engine.shard import ShardedHierarchy
    from repro.memsim.hierarchy import HierarchyConfig
    from repro.telemetry.live import FlightRecorder, crash_dump_scope

    with crash_dump_scope(FlightRecorder(), sys.argv[1]):
        sharded = ShardedHierarchy(HierarchyConfig.small(), 1, 2,
                                   min_batch=100)
        rng = np.random.default_rng(0)
        sharded.access_batch(
            rng.integers(0, 1 << 16, size=500, dtype=np.int64),
            np.full(500, 8, dtype=np.int64),
        )
        names = " ".join(w._segment.name for w in sharded._workers)
        print("READY", names, flush=True)
        time.sleep(60)
    """
)


class TestSigtermLeak:
    @pytest.mark.skipif(
        not hasattr(signal, "SIGTERM"), reason="no SIGTERM on this platform"
    )
    def test_killed_run_leaves_no_shard_segments(self, tmp_path):
        """Satellite contract: SIGTERM mid-run reclaims every shard
        worker's segment, via the same incident hook the shm engine
        registers — not the child's atexit, which never runs."""
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", CHILD, str(tmp_path / "flight.json")],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline().split()
            assert line and line[0] == "READY", "child failed to start"
            names = line[1:]
            assert len(names) == 2
            for name in names:
                assert segment_exists(name)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 143
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
            proc.stdout.close()
        assert (tmp_path / "flight.json").exists()
        deadline = time.monotonic() + 5.0
        for name in names:
            while segment_exists(name):
                assert time.monotonic() < deadline, f"leaked segment {name}"
                time.sleep(0.05)
        leftovers = [
            p for p in Path("/dev/shm").glob("repro-shm-*")
        ] if Path("/dev/shm").is_dir() else []
        assert not any(str(proc.pid) in p.name for p in leftovers)


class TestDaemonFallback:
    """--jobs N runs tasks in daemonic pool workers, which may not
    fork; sharding must degrade to the serial walk there, not crash."""

    @contextlib.contextmanager
    def _daemonic(self):
        proc = multiprocessing.current_process()
        proc._config["daemon"] = True
        try:
            yield
        finally:
            proc._config.pop("daemon", None)

    def test_mode_unavailable_in_daemonic_process(self):
        with self._daemonic():
            assert not shard_engine.shard_mode_available()
        assert shard_engine.shard_mode_available()

    def test_refused_fork_falls_back_to_serial_walk(self):
        config = HierarchyConfig.small()
        addresses, sizes = columns()
        local = MemoryHierarchy(config, 1)
        expected = np.asarray(local.access_batch(addresses, sizes),
                              dtype=np.float64)
        before = set(shm._LIVE)
        with ShardedHierarchy(config, 1, 4, min_batch=100) as sharded:
            with self._daemonic():
                # Activation hits the real Process.start() refusal;
                # the walk must land on the local hierarchy instead.
                got = np.asarray(sharded.access_batch(addresses, sizes),
                                 dtype=np.float64)
            assert np.array_equal(got, expected)
            assert sharded._fork_denied and not sharded._active
            assert sharded.l1_misses() == local.l1_misses()
            assert sharded.dram_accesses == local.dram_accesses
            # Later batches must not retry the fork, even undaemonised.
            more_a, more_s = columns(seed=11)
            got2 = sharded.access_batch(more_a, more_s)
            expected2 = local.access_batch(more_a, more_s)
            assert np.array_equal(np.asarray(got2), np.asarray(expected2))
            assert not sharded._active
        # The refused activation must not leak segments (the failed
        # worker start unwinds its own, cleanup unwinds the rest).
        assert set(shm._LIVE) == before
