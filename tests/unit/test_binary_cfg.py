"""Unit tests for the CFG data structure and the IR lowering."""

import pytest

from repro.binary import ControlFlowGraph, ip_extent, lower_function, lower_program
from repro.layout import INT, StructType
from repro.program import Access, Compute, Function, Loop, Program, WorkloadBuilder, affine


class TestControlFlowGraph:
    def test_first_block_becomes_entry(self):
        cfg = ControlFlowGraph("f")
        first = cfg.new_block()
        assert cfg.entry is first

    def test_edges_and_neighbours(self):
        cfg = ControlFlowGraph()
        a, b, c = (cfg.new_block() for _ in range(3))
        cfg.add_edge(a, b)
        cfg.add_edge(a, c)
        cfg.add_edge(b, c)
        assert cfg.successors(a) == [b, c]
        assert cfg.predecessors(c) == [a, b]
        assert len(list(cfg.edges())) == 3

    def test_duplicate_edges_collapse(self):
        cfg = ControlFlowGraph()
        a, b = cfg.new_block(), cfg.new_block()
        cfg.add_edge(a, b)
        cfg.add_edge(a, b)
        assert cfg.successors(a) == [b]

    def test_foreign_block_rejected(self):
        cfg1, cfg2 = ControlFlowGraph(), ControlFlowGraph()
        a = cfg1.new_block()
        b = cfg2.new_block()
        with pytest.raises(ValueError):
            cfg1.add_edge(a, b)

    def test_reachable_excludes_orphans(self):
        cfg = ControlFlowGraph()
        a, b, orphan = (cfg.new_block() for _ in range(3))
        cfg.add_edge(a, b)
        assert cfg.reachable() == {a.id, b.id}
        assert orphan.id not in cfg.reachable()

    def test_dfs_preorder_visits_first_successor_first(self):
        cfg = ControlFlowGraph()
        a, b, c, d = (cfg.new_block() for _ in range(4))
        cfg.add_edge(a, b)
        cfg.add_edge(a, c)
        cfg.add_edge(b, d)
        order = [blk.id for blk in cfg.dfs_preorder()]
        assert order == [a.id, b.id, d.id, c.id]

    def test_to_dot_renders_nodes_and_edges(self):
        cfg = ControlFlowGraph("g")
        a, b = cfg.new_block(label="hdr"), cfg.new_block()
        cfg.add_edge(a, b)
        dot = cfg.to_dot()
        assert "digraph" in dot and "hdr" in dot and "n0 -> n1" in dot


def loop_program():
    st = StructType("s", [("x", INT)])
    builder = WorkloadBuilder("t")
    builder.add_aos(st, 8, name="A")
    inner = Loop(line=3, var="j", start=0, stop=2, body=[
        Access(line=4, array="A", field="x", index=affine("j")),
    ], end_line=4)
    outer = Loop(line=2, var="i", start=0, stop=2, body=[
        Compute(line=2, cycles=1.0),
        inner,
        Compute(line=5, cycles=1.0),
    ], end_line=5)
    return builder.build([Function("main", [Compute(line=1, cycles=1.0), outer])])


class TestLowering:
    def test_nested_loops_produce_back_edges(self):
        bound = loop_program()
        cfg = lower_function(bound.program, "main")
        back_edges = 0
        # A back edge here: an edge into a loop-header block from a
        # later block (block ids follow creation order, which matches
        # lowering order, so src.id > dst.id identifies the latch edge).
        for src, dst in cfg.edges():
            if dst.label.startswith("loop@") and src.id > dst.id:
                back_edges += 1
        assert back_edges == 2  # one per loop

    def test_every_statement_ip_lands_in_exactly_one_block(self):
        bound = loop_program()
        cfg = lower_function(bound.program, "main")
        ips = [ip for blk in cfg.blocks for ip in blk.ips]
        assert len(ips) == len(set(ips))
        stmt_ips = {s.ip for _, s in bound.program.walk()}
        assert set(ips) == stmt_ips

    def test_lower_program_covers_all_functions(self):
        bound = loop_program()
        cfgs = lower_program(bound.program)
        assert set(cfgs) == {"main"}

    def test_ip_extent(self):
        bound = loop_program()
        cfg = lower_function(bound.program, "main")
        lo, hi = ip_extent(cfg)
        assert lo < hi
        assert ip_extent(ControlFlowGraph()) == (0, 0)

    def test_header_blocks_carry_loop_lines(self):
        bound = loop_program()
        cfg = lower_function(bound.program, "main")
        header_lines = {blk.lines[0] for blk in cfg.blocks
                        if blk.label.startswith("loop@")}
        assert header_lines == {2, 3}
