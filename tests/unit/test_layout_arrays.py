"""Unit tests for array-of-struct addressing and the address space."""

import pytest

from repro.layout import (
    HEAP_BASE,
    INT,
    AddressSpace,
    ArrayOfStructs,
    StructType,
)

PAIR = StructType("pair", [("a", INT), ("b", INT)])


@pytest.fixture
def space():
    return AddressSpace()


@pytest.fixture
def arr(space):
    return ArrayOfStructs.allocate(space, PAIR, 100, name="pairs")


class TestAddressing:
    def test_element_addresses_are_strided_by_struct_size(self, arr):
        assert arr.element_address(1) - arr.element_address(0) == 8
        assert arr.stride == PAIR.size

    def test_field_address_adds_offset(self, arr):
        assert arr.field_address(3, "b") == arr.base + 3 * 8 + 4

    def test_bounds_checked(self, arr):
        with pytest.raises(ValueError):
            arr.element_address(100)
        with pytest.raises(ValueError):
            arr.field_address(-1, "a")

    def test_locate_roundtrips(self, arr):
        for index in (0, 7, 99):
            for field in ("a", "b"):
                got_index, got_field = arr.locate(arr.field_address(index, field))
                assert got_index == index
                assert got_field is not None and got_field.name == field

    def test_locate_outside_raises(self, arr):
        with pytest.raises(ValueError):
            arr.locate(arr.base - 1)
        with pytest.raises(ValueError):
            arr.locate(arr.base + arr.size_bytes)


class TestAllocation:
    def test_allocation_too_small_rejected(self, space):
        alloc = space.allocate("tiny", 8)
        with pytest.raises(ValueError, match="needs"):
            ArrayOfStructs(PAIR, 100, alloc)

    def test_nonpositive_count_rejected(self, space):
        alloc = space.allocate("x", 64)
        with pytest.raises(ValueError):
            ArrayOfStructs(PAIR, 0, alloc)

    def test_default_alignment_is_cache_line(self, arr):
        assert arr.base % 64 == 0


class TestAddressSpace:
    def test_allocations_do_not_overlap(self, space):
        a = space.allocate("a", 100)
        b = space.allocate("b", 100)
        assert a.end <= b.base

    def test_heap_starts_at_heap_base(self, space):
        a = space.allocate("a", 10)
        assert a.base >= HEAP_BASE

    def test_static_segment_is_distinct(self, space):
        s = space.allocate("sym", 10, segment="static")
        h = space.allocate("heap", 10)
        assert s.segment == "static"
        assert s.base < h.base  # static segment sits below the heap

    def test_find_hits_and_misses(self, space):
        a = space.allocate("a", 64)
        assert space.find(a.base) is a
        assert space.find(a.base + 63) is a
        assert space.find(a.base + 64) is None
        assert space.find(0) is None

    def test_unknown_segment_rejected(self, space):
        with pytest.raises(ValueError):
            space.allocate("x", 8, segment="stack")

    def test_nonpositive_size_rejected(self, space):
        with pytest.raises(ValueError):
            space.allocate("x", 0)

    def test_call_path_is_recorded(self, space):
        a = space.allocate("a", 8, call_path=("main", "init"))
        assert a.call_path == ("main", "init")
