"""Unit tests for profile views (§4.4) and multi-process profiling."""

import pytest

from repro.core import (
    OfflineAnalyzer,
    ViewNode,
    code_centric_view,
    data_centric_view,
    hot_paths,
)
from repro.profiler import Monitor, ThreadProfile, profile_processes

from ..conftest import build_figure1


class TestViewNode:
    def test_child_is_created_once(self):
        root = ViewNode("root")
        a = root.child("a")
        assert root.child("a") is a
        assert len(root.children) == 1

    def test_sort_orders_by_latency(self):
        root = ViewNode("root")
        root.child("cold").latency = 1.0
        root.child("hot").latency = 9.0
        root.sort()
        assert [c.label for c in root.children] == ["hot", "cold"]

    def test_render_shows_shares(self):
        root = ViewNode("root", latency=10.0)
        root.child("x").latency = 5.0
        text = root.render()
        assert "root" in text and " 50.0%" in text


@pytest.fixture(scope="module")
def figure1_run():
    bound = build_figure1(n=4096)
    return Monitor(sampling_period=67).run(bound)


class TestCodeCentricView:
    def test_structure_function_loop_line_data(self, figure1_run):
        view = code_centric_view(figure1_run.merged, figure1_run.loop_map)
        (main,) = [c for c in view.children if c.label == "main"]
        loop_labels = {c.label for c in main.children}
        assert "loop 4-5" in loop_labels
        assert "loop 7-8" in loop_labels

    def test_latency_conserved_down_the_tree(self, figure1_run):
        view = code_centric_view(figure1_run.merged, figure1_run.loop_map)
        for fn in view.children:
            assert fn.latency == pytest.approx(
                sum(l.latency for l in fn.children)
            )
        assert view.latency == pytest.approx(
            sum(fn.latency for fn in view.children)
        )

    def test_without_loop_map_buckets_unknown(self, figure1_run):
        view = code_centric_view(figure1_run.merged, None)
        assert view.children[0].label == "<unknown function>"


class TestDataCentricView:
    def test_objects_sorted_by_heat(self, figure1_run):
        view = data_centric_view(figure1_run.merged, figure1_run.loop_map)
        assert view.children[0].label == "Arr"

    def test_allocation_paths_shown(self, figure1_run):
        view = data_centric_view(figure1_run.merged, figure1_run.loop_map)
        text = view.render()
        assert "allocated at:" in text
        assert "accessed in loop" in text


class TestHotPaths:
    def test_top_path_is_the_hottest_leaf(self, figure1_run):
        view = code_centric_view(figure1_run.merged, figure1_run.loop_map)
        paths = hot_paths(view, limit=3)
        assert paths
        assert paths[0][1] >= paths[-1][1]
        assert "Arr" in paths[0][0]

    def test_limit_respected(self, figure1_run):
        view = data_centric_view(figure1_run.merged, figure1_run.loop_map)
        assert len(hot_paths(view, limit=1)) == 1


class TestMultiProcess:
    def _build(self, rank):
        # Each rank gets a different ASLR-style skew: the "same" array
        # lives at different absolute addresses per process.
        return build_figure1(n=2048, skew_bytes=4096 * (rank + 1))

    def test_ranks_have_distinct_address_spaces(self):
        bounds = [self._build(rank) for rank in range(2)]
        a = bounds[0].bindings.resolve("Arr", "a")[0].base
        b = bounds[1].bindings.resolve("Arr", "a")[0].base
        assert a != b

    def test_merge_by_identity_recovers_structure(self):
        run = profile_processes(self._build, 3,
                                monitor=Monitor(sampling_period=67))
        report = OfflineAnalyzer().analyze_profile(
            run.merged, loop_map=run.ranks[0].loop_map, workload="figure1"
        )
        analysis = report.object_by_name("Arr")
        assert analysis is not None
        assert analysis.recovered.size == 16
        assert set(analysis.recovered.offsets) == {0, 4, 8, 12}

    def test_aggregate_metrics_sum(self):
        run = profile_processes(
            lambda rank: build_figure1(n=1024), 2,
            monitor=Monitor(sampling_period=67),
        )
        total = run.aggregate_metrics()
        assert total.accesses == sum(r.metrics.accesses for r in run.ranks)
        assert run.overhead_percent() > 0

    def test_invalid_process_count(self):
        with pytest.raises(ValueError):
            profile_processes(lambda rank: build_figure1(n=64), 0)

    def test_aggregate_metrics_sums_every_numeric_field(self):
        """No RunMetrics counter may be silently dropped by aggregation.

        The summation is checked generically over ``dataclasses.fields``
        with every numeric field set non-zero, so adding a counter to
        RunMetrics without aggregating it fails here immediately (the
        old hand-enumerated version dropped ``invalidations``).
        """
        from dataclasses import fields
        from types import SimpleNamespace

        from repro.memsim.stats import RunMetrics
        from repro.profiler.multiprocess import MultiProcessRun

        def metrics(offset):
            m = RunMetrics(name="w", variant="original")
            for i, spec in enumerate(fields(RunMetrics)):
                value = getattr(m, spec.name)
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                setattr(m, spec.name, type(value)(offset + i + 1))
            return m

        ranks = [SimpleNamespace(metrics=metrics(10)),
                 SimpleNamespace(metrics=metrics(100))]
        run = MultiProcessRun(workload="w", ranks=ranks,
                              merged=ThreadProfile(thread=-1))
        total = run.aggregate_metrics()
        for spec in fields(RunMetrics):
            value = getattr(ranks[0].metrics, spec.name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            expected = sum(getattr(r.metrics, spec.name) for r in ranks)
            assert getattr(total, spec.name) == expected, spec.name
        assert total.invalidations > 0  # the field the old code dropped
