"""Unit tests for the experiment harness plumbing (report, runners)."""

import pytest

from repro.experiments import (
    Table,
    bar_chart,
    kernel_overhead,
    run_accuracy_sweep,
    run_suite_overheads,
    samples_needed,
)
from repro.workloads import SPEC_CPU2006_KERNELS


class TestTable:
    def _table(self):
        t = Table("demo", ["name", "value"])
        t.add_row("alpha", 1.5)
        t.add_row("beta", 20)
        return t

    def test_render_aligns_and_titles(self):
        text = self._table().render()
        assert text.startswith("== demo ==")
        assert "alpha" in text and "1.50" in text

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            self._table().add_row("too", 1, 2)

    def test_csv(self):
        csv_text = self._table().to_csv()
        assert csv_text.splitlines()[0] == "name,value"
        assert "alpha,1.5" in csv_text

    def test_column(self):
        assert self._table().column("value") == [1.5, 20]

    def test_note_rendered(self):
        t = Table("x", ["a"], note="hello")
        t.add_row(1)
        assert "(hello)" in t.render()


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = bar_chart("t", ["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_reference_line(self):
        chart = bar_chart("t", ["a"], [1.0], reference=4.2)
        assert "4.20" in chart

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart("t", ["a"], [1.0, 2.0])


class TestAccuracyExperiment:
    def test_sweep_produces_monotone_bound(self):
        table = run_accuracy_sweep(ks=(2, 4, 8), n=500, trials=50)
        bounds = table.column("lower bound")
        assert bounds == sorted(bounds)

    def test_samples_needed_is_about_ten(self):
        assert 5 <= samples_needed(0.99) <= 12


class TestOverheadExperiment:
    def test_single_kernel_overhead_positive(self):
        assert kernel_overhead(SPEC_CPU2006_KERNELS[0]) > 0

    def test_suite_limit_and_average(self):
        result = run_suite_overheads("spec", limit=2)
        assert len(result.rows) == 2
        values = [v for _, v in result.rows]
        assert result.average == pytest.approx(sum(values) / 2)

    def test_table_and_chart_render(self):
        result = run_suite_overheads("spec", limit=2)
        assert "average" in result.table().render()
        assert "#" in result.chart()
