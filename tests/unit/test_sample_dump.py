"""Unit tests for raw sample dumps and data-source reporting."""

import pytest

from repro.binary import LoopMap
from repro.core import OfflineAnalyzer
from repro.profiler import DataObjectRegistry, Monitor, ProfileCollector
from repro.sampling import (
    AddressSample,
    iter_samples,
    load_samples,
    save_samples,
)

from ..conftest import build_figure1


def make_samples(n=20):
    return [
        AddressSample(i, i % 2, 0x400000 + i * 16, 0x1000 + i * 64, 8,
                      bool(i % 3 == 0), float(4 + i), 10 + i, 0)
        for i in range(n)
    ]


class TestDumpRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "samples.jsonl"
        originals = make_samples()
        assert save_samples(originals, path) == len(originals)
        assert load_samples(path) == originals

    def test_iter_streams_lazily(self, tmp_path):
        path = tmp_path / "samples.jsonl"
        save_samples(make_samples(5), path)
        iterator = iter_samples(path)
        first = next(iterator)
        assert isinstance(first, AddressSample)
        assert len(list(iterator)) == 4

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("hello world\n")
        with pytest.raises(ValueError, match="not a sample dump"):
            load_samples(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text('{"format": "repro-address-samples", "version": 99}\n')
        with pytest.raises(ValueError, match="version"):
            load_samples(path)

    def test_empty_dump(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_samples([], path)
        assert load_samples(path) == []


class TestReplayThroughCollector:
    def test_dumped_samples_reproduce_the_analysis(self, tmp_path):
        bound = build_figure1(n=4096)
        monitor = Monitor(sampling_period=97)
        run = monitor.run(bound)

        # Capture the raw samples again by re-running the sampler path:
        # Monitor discards them after collection, so simulate directly.
        from repro.memsim import simulate
        from repro.program import Interpreter
        from repro.sampling import PEBSLoadLatencySampler

        sampler = PEBSLoadLatencySampler(97, seed=0)
        simulate(Interpreter(bound).run(), observer=sampler.observe)
        path = tmp_path / "fig1.jsonl"
        save_samples(sampler.samples, path)

        collector = ProfileCollector(
            DataObjectRegistry.from_address_space(bound.space),
            LoopMap(bound.program),
            program_name="figure1",
        )
        profiles = collector.collect(iter_samples(path))
        replayed = OfflineAnalyzer().analyze_profile(
            list(profiles.values())[0], loop_map=run.loop_map,
        )
        direct = OfflineAnalyzer().analyze(run)
        assert (replayed.object_by_name("Arr").recovered.size
                == direct.object_by_name("Arr").recovered.size)


class TestDataSourceReporting:
    def test_stream_source_counts_collected(self):
        bound = build_figure1(n=8192)
        run = Monitor(sampling_period=67).run(bound)
        sources = {}
        for stream in run.merged.streams.values():
            for source, count in stream.source_counts.items():
                sources[source] = sources.get(source, 0) + count
        assert sum(sources.values()) == run.sample_count
        assert set(sources) <= {"L1", "L2", "L3", "DRAM"}

    def test_report_renders_source_breakdown(self):
        bound = build_figure1(n=8192)
        run = Monitor(sampling_period=67).run(bound)
        text = OfflineAnalyzer().analyze(run).render()
        assert "sample data sources:" in text

    def test_source_counts_survive_profile_files(self, tmp_path):
        from repro.profiler import ThreadProfile

        bound = build_figure1(n=2048)
        run = Monitor(sampling_period=67).run(bound)
        path = tmp_path / "p.json"
        run.profiles[0].save(path)
        loaded = ThreadProfile.load(path)
        for key, stream in run.profiles[0].streams.items():
            assert loaded.streams[key].source_counts == stream.source_counts
