"""Unit tests for the static HTML dashboard renderer."""

import json

from repro.telemetry import history
from repro.telemetry.dash import render_dash, write_dash

from .test_telemetry_history import make_bench


def make_entries():
    return [
        history.make_entry(make_bench("20260101T000000"), sha="aaa111"),
        history.make_entry(
            make_bench("20260102T000000", simulate=1.0, e2e=1.3),
            sha="bbb222",
        ),
    ]


def extract_island(html_text):
    marker = 'id="repro-dash-data">'
    start = html_text.index(marker) + len(marker)
    end = html_text.index("</script>", start)
    return json.loads(html_text[start:end])


class TestRenderDash:
    def test_data_island_embeds_latest_entry_id(self):
        entries = make_entries()
        island = extract_island(render_dash(entries))
        assert island["latest_entry"] == entries[-1]["id"]
        assert [row["id"] for row in island["entries"]] == [
            e["id"] for e in entries
        ]
        assert island["entries"][0]["stages_batched_seconds"][
            "simulate"
        ] == 0.8

    def test_panels_present_with_history_only(self):
        text = render_dash(make_entries())
        assert "Batched end-to-end throughput" in text
        assert "Per-stage wall time" in text
        assert "trend-line" in text
        assert "stage-simulate" in text
        # Telemetry-fed panels degrade to a hint, not an error.
        assert "No trace captured" in text
        assert "Monitoring overhead" not in text

    def test_empty_history_renders_placeholder(self):
        text = render_dash([])
        assert "No bench history yet" in text
        assert extract_island(text)["latest_entry"] is None

    def test_table_view_lists_every_entry(self):
        entries = make_entries()
        text = render_dash(entries)
        for entry in entries:
            assert entry["id"] in text
        assert "aaa111" in text and "bbb222" in text

    def test_marks_carry_hover_tooltips(self):
        text = render_dash(make_entries())
        assert text.count("data-tip=") >= 2  # markers + stacked segments


class TestTelemetryPanels:
    def make_telemetry_dir(self, tmp_path):
        tel = tmp_path / "tel"
        tel.mkdir()
        (tel / "trace.json").write_text(json.dumps({
            "traceEvents": [
                {"ph": "M", "name": "process_name"},
                {"ph": "X", "name": "run", "ts": 0.0, "dur": 1000.0},
                {"ph": "X", "name": "simulate", "ts": 100.0, "dur": 600.0},
            ]
        }))
        (tel / "metrics.prom").write_text(
            'repro_memsim_cache_hits_total{level="L1"} 90\n'
            'repro_memsim_cache_misses_total{level="L1"} 10\n'
            'repro_memsim_cache_hits_total{level="L3"} 5\n'
            'repro_memsim_cache_misses_total{level="L3"} 15\n'
        )
        (tel / "overhead.json").write_text(json.dumps([{
            "workload": "179.ART",
            "overhead_percent": 3.25,
            "components_percent": {
                "interrupt_service": 1.5,
                "online_analysis": 1.0,
                "collection": 0.75,
            },
        }]))
        return tel

    def test_flame_overhead_and_cache_panels(self, tmp_path):
        tel = self.make_telemetry_dir(tmp_path)
        text = render_dash(make_entries(), telemetry_dir=tel)
        # Flame: nested span sits one row down (depth from containment).
        assert 'class="flame flame-0"' in text
        assert 'class="flame flame-1"' in text
        assert "simulate: 0.60 ms" in text
        # Overhead decomposition and its direct labels.
        assert "interrupt service" in text
        assert "1.50%" in text
        # Cache hit-rate meters: 90% and 25%.
        assert "90.0%" in text
        assert "25.0%" in text

    def test_missing_telemetry_dir_is_tolerated(self, tmp_path):
        text = render_dash(make_entries(),
                           telemetry_dir=tmp_path / "nope")
        assert "No trace captured" in text

    def test_write_dash_creates_parent_dirs(self, tmp_path):
        out = write_dash(
            tmp_path / "deep" / "dash.html", make_entries()
        )
        assert out.exists()
        assert extract_island(out.read_text())["latest_entry"]
