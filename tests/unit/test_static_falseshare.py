"""Unit tests for the static false-sharing detector (static/falseshare.py)."""

import pytest

from repro.layout import LONG, StructType
from repro.memsim import HierarchyConfig
from repro.program import (
    Access,
    AddrOf,
    Affine,
    Const,
    Function,
    Loop,
    Mod,
    PtrAccess,
    WorkloadBuilder,
    affine,
)
from repro.static import cross_validate_false_sharing, detect_false_sharing
from repro.static.absint import ENUM_CAP

SLOT = StructType("slot", [("v", LONG)])


def build(body, *, count=60, name="S"):
    builder = WorkloadBuilder("fs")
    builder.add_aos(SLOT, count, name=name)
    return builder.build([Function("main", body, line=1)])


def interleaved_writes(n=60):
    """Two threads whose written elements interleave even/odd.

    The write index 31*i mod 60 maps thread 0's chunk (i in [0,30)) to
    the evens of [0,30) and the odds of [31,60), and thread 1's chunk to
    the complement — so every cache line in the array, whatever the
    allocation's alignment, holds bytes written by both threads at
    disjoint offsets: textbook false sharing.
    """
    return build([
        Loop(line=2, var="i", start=0, stop=n, parallel=True, body=[
            Access(line=3, array="S", field="v",
                   index=Mod(Affine("i", 31, 0), n), is_write=True),
        ]),
    ], count=n)


class TestDetection:
    def test_interleaved_writers_flag_false_sharing(self):
        report = detect_false_sharing(interleaved_writes(), num_threads=2)
        assert report.exact
        assert report.lines
        assert all(e.kind == "false-sharing" for e in report.lines)
        entry = report.lines[0]
        assert entry.threads == (0, 1)
        assert entry.writers == (0, 1)
        assert "v" in entry.fields
        assert ("main", 3) in entry.sites
        assert entry.object_name == "S"

    def test_same_address_writes_are_true_sharing(self):
        bound = build([
            Loop(line=2, var="i", start=0, stop=8, parallel=True, body=[
                Access(line=3, array="S", field="v", index=Const(0),
                       is_write=True),
            ]),
        ])
        report = detect_false_sharing(bound, num_threads=2)
        (entry,) = report.lines
        assert entry.kind == "true-sharing"

    def test_single_thread_never_shares(self):
        report = detect_false_sharing(interleaved_writes(), num_threads=1)
        assert report.lines == []
        assert report.exact

    def test_serial_loop_runs_on_thread_zero_only(self):
        bound = build([
            Loop(line=2, var="i", start=0, stop=60, body=[
                Access(line=3, array="S", field="v", index=affine("i"),
                       is_write=True),
            ]),
        ])
        report = detect_false_sharing(bound, num_threads=4)
        assert report.lines == []

    def test_read_only_lines_not_flagged(self):
        bound = build([
            Loop(line=2, var="i", start=0, stop=60, parallel=True, body=[
                Access(line=3, array="S", field="v",
                       index=Mod(Affine("i", 31, 0), 60)),
            ]),
        ])
        assert detect_false_sharing(bound, num_threads=2).lines == []

    def test_bad_line_size_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            detect_false_sharing(interleaved_writes(), num_threads=2,
                                 line_size=48)
        with pytest.raises(ValueError, match="num_threads"):
            detect_false_sharing(interleaved_writes(), num_threads=0)


class TestCoarseFallbacks:
    def test_over_budget_loop_blankets_the_array(self):
        n = ENUM_CAP + 2
        bound = build([
            Loop(line=2, var="i", start=0, stop=n, parallel=True, body=[
                Access(line=3, array="S", field="v", index=affine("i"),
                       is_write=True),
            ]),
        ], count=n)
        report = detect_false_sharing(bound, num_threads=2)
        assert not report.exact
        assert report.coarse_spans
        aos = bound.bindings.backing_arrays("S")[0]
        assert report.covers(aos.base >> 6)
        assert report.covers((aos.base + aos.count * aos.stride - 1) >> 6)

    def test_parallel_ptr_access_blankets_possible_targets(self):
        bound = build([
            Loop(line=2, var="i", start=0, stop=8, parallel=True, body=[
                AddrOf(line=3, dest="p", array="S", field="v",
                       index=affine("i")),
                PtrAccess(line=4, ptr="p", is_write=True),
            ]),
        ])
        report = detect_false_sharing(bound, num_threads=2)
        assert not report.exact
        aos = bound.bindings.backing_arrays("S")[0]
        assert report.covers(aos.base >> 6)

    def test_serial_ptr_access_stays_exact(self):
        bound = build([
            AddrOf(line=2, dest="p", array="S", field="v", index=Const(0)),
            PtrAccess(line=3, ptr="p", is_write=True),
        ])
        report = detect_false_sharing(bound, num_threads=2)
        assert report.exact
        assert report.coarse_spans == ()


class TestOracle:
    def test_mesi_invalidations_are_covered(self):
        oracle = cross_validate_false_sharing(
            interleaved_writes(), num_threads=2,
            config=HierarchyConfig.small(),
        )
        assert oracle.ok
        assert sum(oracle.dynamic_lines.values()) > 0
        assert oracle.coverage == 1.0
        assert "OK" in oracle.render()

    def test_single_thread_has_no_invalidations(self):
        oracle = cross_validate_false_sharing(
            interleaved_writes(), num_threads=1,
            config=HierarchyConfig.small(),
        )
        assert oracle.ok
        assert oracle.dynamic_lines == {}
