"""Unit tests for the parallel experiment runner and its result cache."""

import json

import pytest

from repro.runner import (
    ResultCache,
    RunnerStats,
    TaskSpec,
    as_cache,
    derive_seed,
    execute_task,
    register_task_kind,
    run_tasks,
)
from repro.runner import tasks as runner_tasks


@pytest.fixture
def echo_kind():
    """A cheap deterministic task kind; unregisters itself afterwards."""
    calls = []

    def executor(spec):
        calls.append(spec)
        return {
            "name": spec.name,
            "seed": spec.seed,
            "value": spec.seed * 0.125 + len(spec.name),
        }

    register_task_kind("echo-test", executor)
    yield calls
    runner_tasks._EXECUTORS.pop("echo-test", None)


def spec(name="w", seed=0, **params):
    return TaskSpec(kind="echo-test", name=name, params=params, seed=seed)


class TestSeeds:
    def test_rank_offset_derivation(self):
        assert derive_seed(0, 0) == 0
        assert derive_seed(7, 3) == 10

    def test_matches_profile_processes_convention(self):
        # profile_processes seeds rank r with base + r; the runner must
        # derive identically so parallel experiments reproduce MPI-style
        # profiling runs.
        base = 42
        assert [derive_seed(base, r) for r in range(4)] == [42, 43, 44, 45]


class TestTaskRegistry:
    def test_execute_returns_jsonable(self, echo_kind):
        record = execute_task(spec("Mser", seed=3))
        json.dumps(record)  # must not raise
        assert record == {"name": "Mser", "seed": 3, "value": 3 * 0.125 + 4}

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown task kind"):
            execute_task(TaskSpec(kind="no-such-kind", name="x"))

    def test_builtin_kinds_registered(self):
        for kind in ("optimize", "optimize-report", "kernel-overhead",
                     "sensitivity-point"):
            assert kind in runner_tasks._EXECUTORS


class TestResultCache:
    def test_key_is_stable_and_spec_sensitive(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = spec("w", seed=1, scale=0.5)
        assert cache.key(a) == cache.key(spec("w", seed=1, scale=0.5))
        assert cache.key(a) != cache.key(spec("w", seed=2, scale=0.5))
        assert cache.key(a) != cache.key(spec("w", seed=1, scale=0.6))
        assert cache.key(a) != cache.key(spec("v", seed=1, scale=0.5))

    def test_key_depends_on_package_version(self, tmp_path, monkeypatch):
        import repro

        cache = ResultCache(tmp_path)
        before = cache.key(spec())
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert cache.key(spec()) != before

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = {"value": 1.25, "rows": [1, 2, 3]}
        cache.put(spec(), record)
        assert cache.get(spec()) == record
        assert (cache.hits, cache.misses) == (1, 0)

    def test_absent_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(spec()) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path(spec()).write_text("not json{")
        assert cache.get(spec()) is None
        assert cache.misses == 1

    def test_as_cache_coercions(self, tmp_path):
        assert as_cache(None) is None
        cache = ResultCache(tmp_path)
        assert as_cache(cache) is cache
        assert isinstance(as_cache(tmp_path / "sub"), ResultCache)


class TestRunTasks:
    def test_records_in_spec_order(self, echo_kind):
        specs = [spec(name, seed=i) for i, name in enumerate("abc")]
        records = run_tasks(specs)
        assert [r["name"] for r in records] == ["a", "b", "c"]
        assert [r["seed"] for r in records] == [0, 1, 2]

    def test_stats_accumulate(self, echo_kind, tmp_path):
        stats = RunnerStats()
        specs = [spec(name) for name in "ab"]
        run_tasks(specs, cache=tmp_path, stats=stats)
        run_tasks(specs, cache=tmp_path, stats=stats)
        assert stats.tasks == 4
        assert stats.cache_misses == 2
        assert stats.cache_hits == 2
        assert stats.executed == 2
        assert "hits=2 misses=2 executed=2" in stats.describe()

    def test_warm_cache_executes_nothing(self, echo_kind, tmp_path):
        specs = [spec(name, seed=i) for i, name in enumerate("abcd")]
        cold = run_tasks(specs, cache=tmp_path)
        assert len(echo_kind) == 4
        warm_stats = RunnerStats()
        warm = run_tasks(specs, cache=tmp_path, stats=warm_stats)
        assert len(echo_kind) == 4  # zero new executions
        assert warm_stats.executed == 0
        assert warm == cold

    def test_cold_and_warm_output_byte_identical(self, echo_kind, tmp_path):
        specs = [spec(name, seed=i, scale=0.25) for i, name in
                 enumerate(["462.libquantum", "Mser", "TSP"])]
        cold = json.dumps(run_tasks(specs, cache=tmp_path), sort_keys=True)
        warm = json.dumps(run_tasks(specs, cache=tmp_path), sort_keys=True)
        assert cold == warm

    def test_jobs_capped_by_pending_work(self, echo_kind):
        # jobs > len(specs) must not crash; single pending task runs inline.
        records = run_tasks([spec("solo")], jobs=8)
        assert records[0]["name"] == "solo"
