"""Unit tests for the 3-level hierarchy and the simulation engine."""

import pytest

from repro.memsim import (
    CostModel,
    HierarchyConfig,
    LevelConfig,
    MemoryHierarchy,
    RunMetrics,
    miss_reduction,
    overhead_percent,
    simulate,
    speedup,
)
from repro.program import ComputeBurst, MemoryAccess


def config():
    return HierarchyConfig.small()


class TestLatencyLevels:
    def test_cold_access_pays_dram(self):
        hier = MemoryHierarchy(config())
        assert hier.access(0, 0x1000, 8, False) == config().dram_latency

    def test_second_access_hits_l1(self):
        hier = MemoryHierarchy(config())
        hier.access(0, 0x1000, 8, False)
        assert hier.access(0, 0x1000, 8, False) == config().l1.latency

    def test_same_line_counts_as_hit(self):
        hier = MemoryHierarchy(config())
        hier.access(0, 0x1000, 8, False)
        assert hier.access(0, 0x1038, 8, False) == config().l1.latency

    def test_l1_victim_hits_l2(self):
        cfg = config()  # L1: 1KB 2-way = 8 sets
        hier = MemoryHierarchy(cfg)
        # Three lines in the same L1 set (set stride = 8 lines = 512B).
        for addr in (0x0, 0x200, 0x400):
            hier.access(0, addr, 8, False)
        assert hier.access(0, 0x0, 8, False) == cfg.l2.latency

    def test_split_access_touches_two_lines(self):
        hier = MemoryHierarchy(config())
        hier.access(0, 0x1000 + 60, 8, False)  # crosses the line boundary
        assert hier.l1_misses() == 2

    def test_miss_counters_aggregate(self):
        hier = MemoryHierarchy(config())
        hier.access(0, 0x0, 8, False)
        summary = hier.miss_summary()
        assert summary["l1_misses"] == 1
        assert summary["l2_misses"] == 1
        assert summary["l3_misses"] == 1
        assert summary["dram_accesses"] == 1


class TestMultiCore:
    def test_private_caches_are_independent(self):
        hier = MemoryHierarchy(config(), num_cores=2)
        hier.access(0, 0x1000, 8, False)
        # Core 1 misses its own L1/L2 but hits the shared L3.
        assert hier.access(1, 0x1000, 8, False) == config().l3.latency

    def test_write_invalidates_other_cores(self):
        hier = MemoryHierarchy(config(), num_cores=2)
        hier.access(0, 0x1000, 8, False)
        hier.access(1, 0x1000, 8, False)
        hier.access(1, 0x1000, 8, True)  # write on core 1
        assert hier.invalidations == 1
        # Core 0 must refetch past its private caches.
        assert hier.access(0, 0x1000, 8, False) > config().l1.latency

    def test_coherence_disabled_by_config(self):
        cfg = HierarchyConfig.small()
        cfg = HierarchyConfig(
            line_size=cfg.line_size, l1=cfg.l1, l2=cfg.l2, l3=cfg.l3,
            dram_latency=cfg.dram_latency, prefetch_degree=0, coherence=False,
        )
        hier = MemoryHierarchy(cfg, num_cores=2)
        hier.access(0, 0x1000, 8, False)
        hier.access(1, 0x1000, 8, True)
        assert hier.invalidations == 0

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(config(), num_cores=0)


class TestPrefetchAccounting:
    def test_long_stride_sustains_prefetching(self):
        # A demand stream over 30 consecutive lines. After the stream
        # confirms (two misses), every third line is a demand miss that
        # re-triggers a burst of two prefetches — the stream must stay
        # alive across bursts, not die after the first one.
        cfg = HierarchyConfig(prefetch_degree=2)
        hier = MemoryHierarchy(cfg, 1)
        core = hier.cores[0]
        for line in range(30):
            hier.access(0, line * cfg.line_size, 8, False)
        # Bursts fire at lines 1, 4, 7, ..., 28: ten in all.
        assert core.prefetcher.issued == 20
        # Every prefetched line except the final lookahead (line 30)
        # was later demanded.
        assert core.prefetch_useful == 19

    def test_prefetch_hides_l2_miss_latency(self):
        cfg = HierarchyConfig(prefetch_degree=2)
        hier = MemoryHierarchy(cfg, 1)
        for line in range(2):
            hier.access(0, line * cfg.line_size, 8, False)
        # Lines 2 and 3 were prefetched into L2 by the burst at line 1.
        assert hier.access(0, 2 * cfg.line_size, 8, False) == cfg.l2.latency


class TestCostModelAndSimulate:
    def _trace(self):
        yield MemoryAccess(0, 0x400000, 0x1000, 8, False, 1, 0)
        yield ComputeBurst(0, 10.0)
        yield MemoryAccess(0, 0x400010, 0x1000, 8, False, 1, 0)

    def test_cycles_combine_issue_stall_compute(self):
        cfg = config()
        metrics = simulate(self._trace(), config=cfg,
                           cost=CostModel(issue_cycles=1.0, mlp=2.0))
        expected_stall = (cfg.dram_latency - cfg.l1.latency) / 2.0
        assert metrics.accesses == 2
        assert metrics.compute_cycles == 10.0
        assert metrics.stall_cycles == pytest.approx(expected_stall)
        assert metrics.cycles == pytest.approx(10.0 + 2.0 + expected_stall)

    def test_observer_sees_every_access_with_latency(self):
        seen = []
        simulate(self._trace(), config=config(),
                 observer=lambda a, lat: seen.append((a.address, lat)))
        assert len(seen) == 2
        assert seen[0][1] == config().dram_latency
        assert seen[1][1] == config().l1.latency

    def test_thread_count_detected(self):
        trace = [MemoryAccess(t, 0x400000, 0x1000 + t * 64, 8, False, 1, 0)
                 for t in range(3)]
        metrics = simulate(iter(trace), config=config(), num_cores=4)
        assert metrics.num_threads == 3

    def test_rejects_unknown_items(self):
        with pytest.raises(TypeError):
            simulate(iter(["nope"]), config=config())

    def test_stall_never_negative(self):
        cost = CostModel()
        assert cost.stall(2.0, 4.0) == 0.0


class TestStats:
    def _metrics(self, cycles, l1=100, l2=50, l3=10):
        return RunMetrics(cycles=cycles, l1_misses=l1, l2_misses=l2,
                          l3_misses=l3, accesses=1000, num_threads=2)

    def test_speedup(self):
        assert speedup(self._metrics(200.0), self._metrics(100.0)) == 2.0
        with pytest.raises(ValueError):
            speedup(self._metrics(1.0), self._metrics(0.0))

    def test_miss_reduction_signs(self):
        better = miss_reduction(self._metrics(1, l1=100), self._metrics(1, l1=40))
        assert better["L1"] == pytest.approx(60.0)
        worse = miss_reduction(self._metrics(1, l3=10), self._metrics(1, l3=15))
        assert worse["L3"] == pytest.approx(-50.0)

    def test_miss_reduction_zero_baseline(self):
        r = miss_reduction(self._metrics(1, l3=0), self._metrics(1, l3=0))
        assert r["L3"] == 0.0
        r = miss_reduction(self._metrics(1, l3=0), self._metrics(1, l3=2))
        assert r["L3"] < 0

    def test_overhead_percent(self):
        plain = self._metrics(1000.0)
        assert overhead_percent(plain, 1070.0) == pytest.approx(7.0)

    def test_wall_cycles_and_seconds(self):
        m = self._metrics(2.6e9 * 2)  # 2 threads
        assert m.wall_cycles() == pytest.approx(2.6e9)
        assert m.seconds(ghz=2.6) == pytest.approx(1.0)

    def test_average_latency(self):
        m = RunMetrics(accesses=4, total_latency=40.0)
        assert m.average_latency() == 10.0
        assert RunMetrics().average_latency() == 0.0
