"""Unit tests for the Table 1 PMUs without a latency facility.

The paper's claim: DEAR / Pentium4-PEBS / MRK capture IP and address
but no latency, which is why StructSlim requires PEBS-LL or IBS. These
tests verify the degradation is exactly as stated: address-based
recovery (size, offsets) still works; latency-weighted metrics
collapse to counts.
"""

import pytest

from repro.core import OfflineAnalyzer
from repro.profiler import Monitor
from repro.program import MemoryAccess
from repro.sampling import (
    DEARSampler,
    MRKSampler,
    PEBSLoadLatencySampler,
    Pentium4PEBSSampler,
)

from ..conftest import build_figure1


def access(addr, write=False):
    return MemoryAccess(0, 0x400000, addr, 8, write, 1, 0)


class TestUnitLatencyCapture:
    @pytest.mark.parametrize("sampler_cls", [DEARSampler, MRKSampler,
                                             Pentium4PEBSSampler])
    def test_latency_degraded_to_unit(self, sampler_cls):
        sampler = sampler_cls(period=1, jitter=0.0)
        sampler.observe(access(0x1000), 220.0)
        (sample,) = sampler.samples
        assert sample.latency == 1.0

    def test_loads_only_flags_match_hardware(self):
        dear = DEARSampler(period=1, jitter=0.0)
        dear.observe(access(0x1000, write=True), 50.0)
        assert dear.sample_count == 0  # DEAR watches loads

        p4 = Pentium4PEBSSampler(period=1, jitter=0.0)
        p4.observe(access(0x1000, write=True), 50.0)
        assert p4.sample_count == 1  # P4 PEBS tags stores too


class TestAnalysisDegradation:
    def _report(self, sampler_cls):
        bound = build_figure1(n=8192)
        monitor = Monitor(sampling_period=67, sampler_cls=sampler_cls)
        run = monitor.run(bound)
        return OfflineAnalyzer().analyze(run)

    def test_structure_recovery_survives_without_latency(self):
        report = self._report(MRKSampler)
        analysis = report.object_by_name("Arr")
        assert analysis is not None
        assert analysis.recovered.size == 16
        assert set(analysis.recovered.offsets) == {0, 4, 8, 12}

    def test_affinity_becomes_count_weighted(self):
        # On Figure 1 (uniform access counts) the clusters still come
        # out right -- the metrics are counts now, but counts and
        # latency agree here. The affinity ablation covers where they
        # disagree.
        report = self._report(DEARSampler)
        affinity = report.object_by_name("Arr").affinity
        assert affinity.affinity(0, 8) == pytest.approx(1.0)
        assert affinity.affinity(0, 4) == 0.0

    def test_latency_shares_lose_meaning(self):
        """With unit latencies, 'latency share' is just sample share."""
        pebs = self._report(PEBSLoadLatencySampler)
        mrk = self._report(MRKSampler)
        pebs_total = pebs.total_latency
        mrk_total = mrk.total_latency
        # PEBS-LL totals are cycles (big); MRK totals equal sample count.
        assert pebs_total > 3 * mrk_total
        assert mrk_total == pytest.approx(mrk.sample_count)
