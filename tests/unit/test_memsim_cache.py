"""Unit tests for the set-associative cache and the prefetcher."""

import pytest

from repro.memsim import SetAssociativeCache, StreamPrefetcher


def tiny_cache(ways=2, sets=4):
    return SetAssociativeCache("t", size_bytes=ways * sets * 64, ways=ways)


class TestCacheBasics:
    def test_first_access_misses_second_hits(self):
        cache = tiny_cache()
        assert cache.access(5) is False
        assert cache.access(5) is True
        assert (cache.hits, cache.misses) == (1, 1)

    def test_distinct_sets_do_not_conflict(self):
        cache = tiny_cache(ways=1, sets=4)
        for line in range(4):
            assert cache.access(line) is False
        for line in range(4):
            assert cache.access(line) is True

    def test_lru_evicts_least_recent(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.access(0)
        cache.access(1)
        cache.access(0)       # 0 becomes most recent
        cache.access(2)       # evicts 1
        assert cache.access(0) is True
        assert cache.access(1) is False

    def test_associativity_conflict(self):
        cache = tiny_cache(ways=2, sets=4)
        # lines 0, 4, 8 all map to set 0; 2 ways -> the third evicts.
        cache.access(0)
        cache.access(4)
        cache.access(8)
        assert cache.access(0) is False

    def test_miss_rate(self):
        cache = tiny_cache()
        cache.access(1)
        cache.access(1)
        cache.access(2)
        assert cache.miss_rate == pytest.approx(2 / 3)
        cache.reset_stats()
        assert cache.miss_rate == 0.0


class TestFillAndInvalidate:
    def test_fill_does_not_count_stats(self):
        cache = tiny_cache()
        cache.fill(9)
        assert (cache.hits, cache.misses) == (0, 0)
        assert cache.access(9) is True

    def test_fill_returns_eviction(self):
        cache = tiny_cache(ways=1, sets=1)
        assert cache.fill(0) is None
        assert cache.fill(1) == 0

    def test_fill_existing_line_is_noop(self):
        cache = tiny_cache()
        cache.access(3)
        assert cache.fill(3) is None

    def test_contains_does_not_touch_lru(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.access(0)
        cache.access(1)
        assert cache.contains(0)
        cache.access(2)  # should evict 0 (LRU), since contains didn't promote
        assert not cache.contains(0)

    def test_invalidate(self):
        cache = tiny_cache()
        cache.access(7)
        assert cache.invalidate(7) is True
        assert cache.invalidate(7) is False
        assert cache.access(7) is False

    def test_resident_lines(self):
        cache = tiny_cache()
        for line in range(5):
            cache.access(line)
        assert cache.resident_lines() == 5


class TestGeometryValidation:
    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("t", 1024, 2, line_size=48)

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("t", 1000, 3)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("t", 3 * 64 * 2, 2)  # 3 sets


class TestStreamPrefetcher:
    def test_stream_confirmed_after_threshold(self):
        pf = StreamPrefetcher(degree=2, threshold=2)
        assert pf.observe_miss(10) == []
        assert pf.observe_miss(11) == [12, 13]

    def test_non_consecutive_misses_never_confirm(self):
        pf = StreamPrefetcher(degree=2, threshold=2)
        assert pf.observe_miss(10) == []
        assert pf.observe_miss(20) == []
        assert pf.observe_miss(30) == []

    def test_confirmed_stream_keeps_prefetching(self):
        pf = StreamPrefetcher(degree=1, threshold=2)
        pf.observe_miss(0)
        assert pf.observe_miss(1) == [2]
        # Line 2 was just prefetched, so the stream's next demand miss
        # is line 3 — the head must have re-armed past the prefetches.
        assert pf.observe_miss(3) == [4]
        assert pf.observe_miss(5) == [6]
        assert pf.issued == 3

    def test_confirmed_stream_survives_many_bursts(self):
        pf = StreamPrefetcher(degree=2, threshold=2)
        assert pf.observe_miss(0) == []
        assert pf.observe_miss(1) == [2, 3]
        # Lines 2 and 3 hit; the stream's demand misses continue at 4.
        assert pf.observe_miss(4) == [5, 6]
        assert pf.observe_miss(7) == [8, 9]
        assert pf.issued == 6

    def test_table_bounded(self):
        pf = StreamPrefetcher(degree=1, threshold=2, table_size=2)
        for line in range(0, 100, 10):
            pf.observe_miss(line)
        assert len(pf._table) <= 2

    def test_table_bounded_on_confirmed_inserts(self):
        # threshold=1 confirms every miss, so insertions all take the
        # confirmed branch — the LRU bound must apply there too.
        pf = StreamPrefetcher(degree=2, threshold=1, table_size=4)
        for line in range(0, 1000, 10):
            pf.observe_miss(line)
        assert len(pf._table) <= 4

    def test_degree_zero_prefetches_nothing(self):
        pf = StreamPrefetcher(degree=0, threshold=1)
        assert pf.observe_miss(5) == []

    def test_reset(self):
        pf = StreamPrefetcher(degree=1, threshold=1)
        pf.observe_miss(1)
        pf.reset()
        assert pf.issued == 0


class TestReplacementPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            SetAssociativeCache("t", 1024, 2, policy="plru")

    def test_fifo_does_not_promote_on_hit(self):
        cache = SetAssociativeCache("t", 2 * 64, 2, policy="fifo")
        cache.access(0)
        cache.access(1)
        cache.access(0)  # hit, but stays oldest under FIFO
        cache.access(2)  # evicts 0 (FIFO) where LRU would evict 1
        assert cache.access(1) is True
        assert cache.access(0) is False

    def test_random_policy_is_deterministic_by_seed(self):
        def misses(seed):
            cache = SetAssociativeCache("t", 2 * 64, 2, policy="random",
                                        seed=seed)
            for line in [0, 1, 2, 0, 1, 2, 0, 1, 2]:
                cache.access(line)
            return cache.misses

        assert misses(1) == misses(1)

    def test_all_policies_agree_on_compulsory_misses(self):
        for policy in ("lru", "fifo", "random"):
            cache = SetAssociativeCache("t", 4 * 4 * 64, 4, policy=policy)
            for line in range(8):
                assert cache.access(line) is False, policy
