"""Unit tests for the MESI coherence directory."""

import pytest

from repro.memsim import HierarchyConfig, MemoryHierarchy, MESIDirectory
from repro.memsim.coherence import EXCLUSIVE, MODIFIED, SHARED


class TestDirectoryStates:
    def test_first_reader_gets_exclusive(self):
        d = MESIDirectory()
        assert d.read(0, 100) == 0.0
        assert d.state(0, 100) == EXCLUSIVE

    def test_second_reader_shares(self):
        d = MESIDirectory()
        d.read(0, 100)
        d.read(1, 100)
        assert d.state(0, 100) == SHARED
        assert d.state(1, 100) == SHARED

    def test_writer_takes_modified_and_invalidates(self):
        d = MESIDirectory()
        d.read(0, 100)
        d.read(1, 100)
        extra = d.write(1, 100)
        assert d.state(1, 100) == MODIFIED
        assert d.state(0, 100) is None
        assert d.stats.invalidations == 1
        assert extra == d.upgrade_latency  # S -> M upgrade

    def test_read_of_dirty_line_forwards_and_writes_back(self):
        d = MESIDirectory()
        d.write(0, 100)
        extra = d.read(1, 100)
        assert extra == d.c2c_latency
        assert d.stats.writebacks == 1
        assert d.state(0, 100) == SHARED
        assert d.state(1, 100) == SHARED

    def test_write_hit_in_modified_is_free(self):
        d = MESIDirectory()
        d.write(0, 100)
        assert d.write(0, 100) == 0.0
        assert d.stats.upgrades == 0

    def test_write_steals_dirty_line(self):
        d = MESIDirectory()
        d.write(0, 100)
        extra = d.write(1, 100)
        assert extra == d.c2c_latency
        assert d.stats.writebacks == 1
        assert d.state(0, 100) is None
        assert d.state(1, 100) == MODIFIED

    def test_evicting_dirty_line_writes_back(self):
        d = MESIDirectory()
        d.write(0, 100)
        d.evict(0, 100)
        assert d.stats.writebacks == 1
        assert d.state(0, 100) is None

    def test_evicting_clean_line_is_silent(self):
        d = MESIDirectory()
        d.read(0, 100)
        d.evict(0, 100)
        assert d.stats.writebacks == 0


class TestHierarchyCoherence:
    def _hier(self):
        return MemoryHierarchy(HierarchyConfig.small(), num_cores=2)

    def test_ping_pong_costs_more_than_private_writes(self):
        shared = self._hier()
        for k in range(50):
            shared.access(k % 2, 0x1000, 8, True)  # two cores fight
        private = self._hier()
        for k in range(50):
            private.access(0, 0x1000, 8, True)     # one core owns it
        assert shared.invalidations > 0
        assert private.invalidations == 0

    def test_false_sharing_is_visible(self):
        """Two cores writing adjacent fields in one line invalidate each
        other — the pathology structure splitting can also fix."""
        hier = self._hier()
        for k in range(20):
            hier.access(0, 0x2000, 8, True)      # field A
            hier.access(1, 0x2008, 8, True)      # field B, same line
        summary = hier.miss_summary()
        assert summary["invalidations"] >= 19
        assert summary["cache_to_cache"] > 0

    def test_read_sharing_costs_nothing_extra(self):
        hier = self._hier()
        hier.access(0, 0x3000, 8, False)
        hier.access(1, 0x3000, 8, False)
        base = hier.access(0, 0x3000, 8, False)
        assert base == hier.config.l1.latency
        assert hier.invalidations == 0

    def test_writeback_counted_in_summary(self):
        hier = self._hier()
        hier.access(0, 0x4000, 8, True)
        hier.access(1, 0x4000, 8, False)
        assert hier.miss_summary()["writebacks"] >= 1
