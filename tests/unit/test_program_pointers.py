"""Unit tests for the IR pointer extension: AddrOf, PtrAccess, Call.args."""

import pytest

from repro.layout import INT, StructType
from repro.layout.splitting import SplitPlan, apply_split
from repro.program import (
    Access,
    Const,
    AddrOf,
    Call,
    Function,
    Interpreter,
    Loop,
    PtrAccess,
    TraceError,
    WorkloadBuilder,
    affine,
    memory_accesses,
)
from repro.program.interp import MAX_ACCESS_BYTES, _static_chunks, static_chunks

PAIR = StructType("pair", [("a", INT), ("b", INT)])


def build(body, *, count=8, split=False, extra_functions=()):
    builder = WorkloadBuilder("ptr")
    if split:
        layout = apply_split(PAIR, SplitPlan(PAIR.name, (("a",), ("b",))))
        arr = builder.add_split_aos(layout, count, name="A")
    else:
        arr = builder.add_aos(PAIR, count, name="A")
    functions = [Function("main", body, line=1)] + list(extra_functions)
    return builder.build(functions), arr


def trace(bound, *, batched=False, num_threads=1):
    interp = Interpreter(bound, num_threads=num_threads)
    items = interp.run_batched() if batched else interp.run()
    return list(memory_accesses(items))


class TestAddrOf:
    def test_emits_no_trace_item(self):
        bound, _ = build([
            AddrOf(line=2, dest="p", array="A", field="a", index=Const(0)),
        ])
        assert trace(bound) == []

    def test_field_address_matches_layout(self):
        bound, arr = build([
            Loop(line=2, var="i", start=0, stop=4, body=[
                AddrOf(line=3, dest="p", array="A", field="b",
                       index=affine("i")),
                PtrAccess(line=4, ptr="p"),
            ]),
        ])
        events = trace(bound)
        assert [e.address for e in events] == [
            arr.field_address(i, "b") for i in range(4)
        ]

    def test_whole_record_base_address(self):
        bound, arr = build([
            AddrOf(line=2, dest="p", array="A", field=None, index=Const(0)),
            PtrAccess(line=3, ptr="p", offset=4, size=4),
        ])
        (event,) = trace(bound)
        assert event.address == arr.element_address(0) + 4

    def test_whole_record_addrof_on_split_backing_raises(self):
        bound, _ = build([
            AddrOf(line=2, dest="p", array="A", field=None, index=Const(0)),
            PtrAccess(line=3, ptr="p"),
        ], split=True)
        with pytest.raises(TraceError, match="split across"):
            trace(bound)

    def test_out_of_bounds_index_raises(self):
        bound, _ = build([
            AddrOf(line=2, dest="p", array="A", field="a", index=Const(99)),
            PtrAccess(line=3, ptr="p"),
        ])
        with pytest.raises(TraceError):
            trace(bound)


class TestPtrAccess:
    def test_unbound_pointer_raises(self):
        bound, _ = build([PtrAccess(line=2, ptr="q")])
        with pytest.raises(TraceError, match="before any AddrOf"):
            trace(bound)

    def test_offset_size_and_write_flag(self):
        bound, arr = build([
            AddrOf(line=2, dest="p", array="A", field="a", index=Const(0)),
            PtrAccess(line=3, ptr="p", offset=2, size=2, is_write=True),
        ])
        (event,) = trace(bound)
        assert event.address == arr.field_address(0, "a") + 2
        assert event.size == 2
        assert event.is_write

    def test_size_clamped_to_max_access_bytes(self):
        bound, _ = build([
            AddrOf(line=2, dest="p", array="A", field="a", index=Const(0)),
            PtrAccess(line=3, ptr="p", size=4096),
        ])
        (event,) = trace(bound)
        assert event.size == MAX_ACCESS_BYTES

    def test_pointer_persists_across_statements(self):
        # Bind once, dereference twice: the env binding is durable, like
        # a C local holding the pointer.
        bound, arr = build([
            AddrOf(line=2, dest="p", array="A", field="b", index=Const(3)),
            PtrAccess(line=3, ptr="p"),
            PtrAccess(line=4, ptr="p", offset=0),
        ])
        events = trace(bound)
        assert [e.address for e in events] == [arr.field_address(3, "b")] * 2

    def test_validation_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            PtrAccess(line=1, ptr="")
        with pytest.raises(ValueError):
            PtrAccess(line=1, ptr="p", size=0)
        with pytest.raises(ValueError):
            AddrOf(line=1, dest="", array="A")


class TestCallArgs:
    def test_pointer_flows_into_callee(self):
        callee = Function("use", [PtrAccess(line=20, ptr="p")], line=19)
        bound, arr = build([
            AddrOf(line=2, dest="p", array="A", field="a", index=Const(2)),
            Call(line=3, callee="use", args=("p",)),
        ], extra_functions=[callee])
        (event,) = trace(bound)
        assert event.address == arr.field_address(2, "a")

    def test_args_are_tupled(self):
        assert Call(line=1, callee="f", args=["p", "q"]).args == ("p", "q")


class TestEngineParity:
    def test_scalar_and_batched_traces_identical(self):
        callee = Function("use", [PtrAccess(line=20, ptr="p", offset=1)],
                          line=19)
        body = [
            Loop(line=2, var="i", start=0, stop=6, body=[
                Access(line=3, array="A", field="a", index=affine("i")),
                AddrOf(line=4, dest="p", array="A", field="b",
                       index=affine("i")),
                PtrAccess(line=5, ptr="p", is_write=True),
                Call(line=6, callee="use", args=("p",)),
            ]),
        ]
        bound, _ = build(body, extra_functions=[callee])
        scalar = trace(bound, batched=False)
        batched = trace(bound, batched=True)
        assert scalar == batched

    def test_parity_under_parallel_loop(self):
        body = [
            Loop(line=2, var="i", start=0, stop=8, parallel=True, body=[
                Access(line=3, array="A", field="a", index=affine("i")),
            ]),
            AddrOf(line=5, dest="p", array="A", field="b", index=Const(2)),
            PtrAccess(line=6, ptr="p"),
        ]
        bound, _ = build(body)
        assert trace(bound, num_threads=4) == trace(
            bound, batched=True, num_threads=4
        )


class TestStaticChunks:
    def test_public_name_and_alias(self):
        assert static_chunks is _static_chunks
        chunks = static_chunks(range(10), 3)
        assert [list(c) for c in chunks] == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
