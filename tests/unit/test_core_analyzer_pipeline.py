"""Unit tests for the offline analyzer and the end-to-end pipeline."""

import pytest

from repro.core import OfflineAnalyzer, derive_plans, optimize
from repro.profiler import Monitor

from ..conftest import FIGURE1_TYPE, build_figure1


@pytest.fixture(scope="module")
def figure1_report():
    bound = build_figure1(n=4096)
    monitor = Monitor(sampling_period=97)
    run = monitor.run(bound)
    return OfflineAnalyzer().analyze(run), run


class TestOfflineAnalyzer:
    def test_hot_data_finds_arr(self, figure1_report):
        report, _ = figure1_report
        assert report.hot
        assert report.hot[0].name == "Arr"
        assert report.hot[0].share > 0.5

    def test_structure_recovered(self, figure1_report):
        report, _ = figure1_report
        analysis = report.object_by_name("Arr")
        assert analysis is not None
        assert analysis.recovered.size == FIGURE1_TYPE.size
        assert set(analysis.recovered.offsets) == {0, 4, 8, 12}

    def test_loop_table_separates_the_two_loops(self, figure1_report):
        report, _ = figure1_report
        analysis = report.object_by_name("Arr")
        offset_sets = {
            tuple(e.offsets) for e in analysis.loop_table.values()
        }
        assert (0, 8) in offset_sets
        assert (4, 12) in offset_sets

    def test_affinities_match_figure1(self, figure1_report):
        report, _ = figure1_report
        affinity = report.object_by_name("Arr").affinity
        assert affinity.affinity(0, 8) == pytest.approx(1.0)
        assert affinity.affinity(4, 12) == pytest.approx(1.0)
        assert affinity.affinity(0, 4) == 0.0

    def test_render_mentions_key_facts(self, figure1_report):
        report, _ = figure1_report
        text = report.render()
        assert "Arr" in text
        assert "element size: 16 bytes" in text

    def test_advised_lists_splittable_objects(self, figure1_report):
        report, _ = figure1_report
        assert any(a.name == "Arr" for a in report.advised())

    def test_object_by_name_misses_gracefully(self, figure1_report):
        report, _ = figure1_report
        assert report.object_by_name("ghost") is None


class TestDerivePlans:
    def test_plan_matches_figure1_split(self, figure1_report):
        report, _ = figure1_report
        plans = derive_plans(report, {"Arr": FIGURE1_TYPE})
        groups = {frozenset(g) for g in plans["Arr"].groups}
        assert groups == {frozenset({"a", "c"}), frozenset({"b", "d"})}

    def test_unknown_struct_skipped(self, figure1_report):
        report, _ = figure1_report
        assert derive_plans(report, {}) == {}


class FigureOneWorkload:
    """Minimal Workload implementation for pipeline tests."""

    name = "figure1"
    num_threads = 1

    def build_original(self):
        return build_figure1(n=16384)

    def build_split(self, plans):
        return build_figure1(n=16384, plans=plans if plans else None)

    def target_structs(self):
        return {"Arr": FIGURE1_TYPE}


class TestOptimizePipeline:
    def test_full_cycle_improves_figure1(self):
        result = optimize(FigureOneWorkload(), monitor=Monitor(sampling_period=97))
        assert result.plans, "expected a split recommendation"
        assert result.speedup > 1.0
        assert result.miss_reduction["L1"] > 0
        row = result.summary_row()
        assert row["benchmark"] == "figure1"
        assert row["speedup"] == result.speedup
