"""Unit tests for StructType layout (offsets, padding, subsets)."""

import pytest

from repro.layout import (
    CHAR,
    DOUBLE,
    INT,
    LONG,
    POINTER,
    FieldLatencyProfile,
    StructType,
    subset_struct,
)
from repro.workloads import F1_NEURON, NEIGHBOR, PATIENT, TREE, ZONE


class TestBasicLayout:
    def test_homogeneous_ints_pack_densely(self):
        st = StructType("t", [("a", INT), ("b", INT), ("c", INT), ("d", INT)])
        assert [f.offset for f in st.fields] == [0, 4, 8, 12]
        assert st.size == 16
        assert st.align == 4

    def test_padding_before_wider_member(self):
        # char then double: 7 bytes of padding, like a C compiler.
        st = StructType("t", [("c", CHAR), ("d", DOUBLE)])
        assert st.offset_of("c") == 0
        assert st.offset_of("d") == 8
        assert st.size == 16

    def test_tail_padding_rounds_to_alignment(self):
        st = StructType("t", [("d", DOUBLE), ("c", CHAR)])
        assert st.size == 16  # 9 bytes of payload, rounded to 8-alignment
        assert st.padding_bytes() == 7

    def test_packed_struct_has_no_padding(self):
        st = StructType("t", [("c", CHAR), ("d", DOUBLE)], packed=True)
        assert st.offset_of("d") == 1
        assert st.size == 9
        assert st.align == 1

    def test_declaration_order_is_preserved(self):
        st = StructType("t", [("z", INT), ("a", INT)])
        assert st.field_names == ("z", "a")


class TestPaperStructs:
    """The §6 structures must lay out exactly as the paper assumes."""

    def test_f1_neuron_is_64_bytes_of_8_byte_fields(self):
        assert F1_NEURON.size == 64
        assert [f.offset for f in F1_NEURON.fields] == list(range(0, 64, 8))

    def test_tree_mixes_ints_and_doubles(self):
        # sz int, pad, x/y doubles, then four ints.
        assert TREE.offset_of("sz") == 0
        assert TREE.offset_of("x") == 8
        assert TREE.offset_of("y") == 16
        assert TREE.offset_of("next") == 32
        assert TREE.size == 40

    def test_zone_is_32_bytes(self):
        assert ZONE.size == 32
        assert ZONE.offset_of("value") == 16
        assert ZONE.offset_of("nextZone") == 24

    def test_patient_has_eight_fields(self):
        assert len(PATIENT) == 8
        assert PATIENT.offset_of("forward") == 32

    def test_neighbor_holds_inline_record_plus_dist(self):
        assert NEIGHBOR.offset_of("entry") == 0
        assert NEIGHBOR.offset_of("dist") == 48
        assert NEIGHBOR.size == 56


class TestValidation:
    def test_empty_struct_rejected(self):
        with pytest.raises(ValueError):
            StructType("t", [])

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            StructType("t", [("a", INT), ("a", LONG)])


class TestQueries:
    @pytest.fixture
    def padded(self):
        return StructType("t", [("c", CHAR), ("d", DOUBLE), ("i", INT)])

    def test_field_lookup(self, padded):
        assert padded.field("d").offset == 8

    def test_missing_field_raises(self, padded):
        with pytest.raises(KeyError):
            padded.field("nope")

    def test_field_at_offset_inside_field(self, padded):
        assert padded.field_at_offset(11).name == "d"  # byte 3 of d

    def test_field_at_offset_in_padding_is_none(self, padded):
        assert padded.field_at_offset(3) is None

    def test_contains(self, padded):
        assert "d" in padded
        assert "q" not in padded

    def test_payload_bytes(self, padded):
        assert padded.payload_bytes(["c", "i"]) == 5

    def test_c_declaration_mentions_every_field(self, padded):
        decl = padded.c_declaration()
        assert decl.startswith("struct t {")
        for name in padded.field_names:
            assert name in decl

    def test_equality_and_hash(self):
        a = StructType("t", [("x", INT)])
        b = StructType("t", [("x", INT)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != StructType("t", [("x", LONG)])


class TestSubsetStruct:
    def test_subset_keeps_declaration_order(self):
        sub = subset_struct(TREE, ["next", "x", "y"], name="tree_hot")
        assert sub.field_names == ("x", "y", "next")  # base order, not ours
        assert sub.size == 24

    def test_subset_recomputes_offsets(self):
        sub = subset_struct(PATIENT, ["forward"])
        assert sub.offset_of("forward") == 0
        assert sub.size == 8

    def test_missing_fields_raise(self):
        with pytest.raises(KeyError):
            subset_struct(TREE, ["x", "nope"])


class TestFieldLatencyProfile:
    def test_accumulates_and_shares(self):
        profile = FieldLatencyProfile(F1_NEURON)
        profile.add("P", 75.0)
        profile.add("U", 25.0)
        profile.add("P", 25.0)
        assert profile.total() == 125.0
        assert profile.share("P") == pytest.approx(0.8)
        assert profile.share("R") == 0.0

    def test_rejects_unknown_field(self):
        profile = FieldLatencyProfile(F1_NEURON)
        with pytest.raises(KeyError):
            profile.add("nope", 1.0)
