"""Unit tests for Havlak interval analysis (loop discovery)."""

import pytest

from repro.binary import ControlFlowGraph, find_loops, lower_function
from repro.layout import INT, StructType
from repro.program import Access, Function, Loop, WorkloadBuilder, affine


def chain(cfg, *blocks):
    for src, dst in zip(blocks, blocks[1:]):
        cfg.add_edge(src, dst)


class TestHandBuiltGraphs:
    def test_straight_line_has_no_loops(self):
        cfg = ControlFlowGraph()
        blocks = [cfg.new_block() for _ in range(4)]
        chain(cfg, *blocks)
        assert len(find_loops(cfg)) == 0

    def test_single_natural_loop(self):
        cfg = ControlFlowGraph()
        entry, header, body, exit_ = (cfg.new_block() for _ in range(4))
        chain(cfg, entry, header, body)
        cfg.add_edge(body, header)
        cfg.add_edge(header, exit_)
        nest = find_loops(cfg)
        assert len(nest) == 1
        loop = nest.loops[0]
        assert loop.header is header
        assert body.id in nest.all_block_ids(loop)
        assert not loop.irreducible

    def test_self_loop(self):
        cfg = ControlFlowGraph()
        entry, node, exit_ = (cfg.new_block() for _ in range(3))
        chain(cfg, entry, node, exit_)
        cfg.add_edge(node, node)
        nest = find_loops(cfg)
        assert len(nest) == 1
        assert nest.loops[0].header is node

    def test_two_sequential_loops_are_siblings(self):
        cfg = ControlFlowGraph()
        e, h1, b1, h2, b2, x = (cfg.new_block() for _ in range(6))
        chain(cfg, e, h1, b1)
        cfg.add_edge(b1, h1)
        cfg.add_edge(h1, h2)
        cfg.add_edge(h2, b2)
        cfg.add_edge(b2, h2)
        cfg.add_edge(h2, x)
        nest = find_loops(cfg)
        assert len(nest) == 2
        assert all(l.parent is None for l in nest.loops)
        assert {l.header.id for l in nest.loops} == {h1.id, h2.id}

    def test_nested_loops_build_a_tree(self):
        cfg = ControlFlowGraph()
        e, oh, ih, ib, ox, x = (cfg.new_block() for _ in range(6))
        chain(cfg, e, oh, ih, ib)
        cfg.add_edge(ib, ih)   # inner back edge
        cfg.add_edge(ih, ox)
        cfg.add_edge(ox, oh)   # outer back edge
        cfg.add_edge(oh, x)
        nest = find_loops(cfg)
        assert len(nest) == 2
        inner = next(l for l in nest.loops if l.header is ih)
        outer = next(l for l in nest.loops if l.header is oh)
        assert inner.parent == outer.id
        assert inner.depth == outer.depth + 1
        assert outer.children == [inner.id]

    def test_irreducible_region_is_flagged(self):
        # The classic two-entry loop: entry branches to both b and c,
        # which cycle through each other.
        cfg = ControlFlowGraph()
        entry, b, c, exit_ = (cfg.new_block() for _ in range(4))
        cfg.add_edge(entry, b)
        cfg.add_edge(entry, c)
        cfg.add_edge(b, c)
        cfg.add_edge(c, b)
        cfg.add_edge(c, exit_)
        nest = find_loops(cfg)
        assert any(l.irreducible for l in nest.loops)

    def test_empty_graph(self):
        assert len(find_loops(ControlFlowGraph())) == 0

    def test_innermost_by_block_prefers_deeper_loop(self):
        cfg = ControlFlowGraph()
        e, oh, ih, ib, ox, x = (cfg.new_block() for _ in range(6))
        chain(cfg, e, oh, ih, ib)
        cfg.add_edge(ib, ih)
        cfg.add_edge(ih, ox)
        cfg.add_edge(ox, oh)
        cfg.add_edge(oh, x)
        nest = find_loops(cfg)
        innermost = nest.innermost_by_block()
        inner = next(l for l in nest.loops if l.header is ih)
        outer = next(l for l in nest.loops if l.header is oh)
        assert innermost[ib.id] == inner.id
        assert innermost[ox.id] == outer.id


class TestAgainstIRGroundTruth:
    """Lower real workload IR and check Havlak recovers its loops."""

    def _nest_of(self, bound, function="main"):
        return find_loops(lower_function(bound.program, function))

    def test_loop_counts_match_for_every_paper_workload(self):
        from repro.workloads import all_workloads

        for workload in all_workloads(scale=0.02):
            bound = workload.build_original()
            found = sum(
                len(find_loops(lower_function(bound.program, fname)))
                for fname in bound.program.functions
            )
            assert found == len(bound.program.loops()), workload.name

    def test_deeply_nested_ir(self):
        st = StructType("s", [("x", INT)])
        builder = WorkloadBuilder("deep")
        builder.add_aos(st, 4, name="A")
        loop = Loop(line=10, var="v0", start=0, stop=1, body=[
            Access(line=11, array="A", field="x", index=affine("v0"))
        ])
        for depth in range(1, 6):
            loop = Loop(line=10 - depth, var=f"v{depth}", start=0, stop=1,
                        body=[loop])
        bound = builder.build([Function("main", [loop])])
        nest = self._nest_of(bound)
        assert len(nest) == 6
        assert max(l.depth for l in nest.loops) == 6
