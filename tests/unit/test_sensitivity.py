"""Unit tests for the sampling-period sensitivity experiment."""

import pytest

from repro.experiments import (
    PeriodPoint,
    sensitivity_table,
    stable_period_range,
    sweep_sampling_period,
)
from repro.workloads import LibquantumWorkload


class TestSweep:
    @pytest.fixture(scope="class")
    def points(self):
        workload = LibquantumWorkload(scale=0.2)
        return sweep_sampling_period(workload, (101, 1009, 8009))

    def test_one_point_per_period(self, points):
        assert [p.period for p in points] == [101, 1009, 8009]

    def test_sample_counts_fall_with_period(self, points):
        counts = [p.sample_count for p in points]
        assert counts == sorted(counts, reverse=True)

    def test_dense_sampling_matches_paper(self, points):
        assert points[0].plan_matches

    def test_overhead_falls_with_period(self, points):
        overheads = [p.overhead_percent for p in points]
        assert overheads == sorted(overheads, reverse=True)

    def test_table_renders(self, points):
        text = sensitivity_table("libquantum", points).render()
        assert "advice matches paper" in text
        assert "101" in text


class TestStableRange:
    def test_returns_largest_matching_period(self):
        points = [
            PeriodPoint(100, 50, 40, True, 5.0),
            PeriodPoint(1000, 5, 4, True, 0.5),
            PeriodPoint(10000, 1, 1, False, 0.05),
        ]
        assert stable_period_range(points) == 1000

    def test_no_match_returns_zero(self):
        points = [PeriodPoint(100, 0, 0, False, 0.0)]
        assert stable_period_range(points) == 0
