"""Unit tests for the sampling engine, PEBS/IBS models, overhead model."""

import pytest

from repro.memsim import RunMetrics
from repro.program import MemoryAccess
from repro.sampling import (
    ASLOP_INSTRUMENTATION,
    BURSTY_SAMPLING_INSTRUMENTATION,
    IBSSampler,
    InstrumentationModel,
    OverheadModel,
    PEBSLoadLatencySampler,
    REUSE_DISTANCE_INSTRUMENTATION,
    SamplingEngine,
    data_source,
)


def access(thread=0, addr=0x1000, write=False):
    return MemoryAccess(thread, 0x400000, addr, 8, write, 1, 0)


class TestSamplingEngine:
    def test_exact_period_without_jitter(self):
        engine = SamplingEngine(period=10, jitter=0.0, seed=1)
        for i in range(100):
            engine.observe(access(addr=0x1000 + i * 8), 10.0)
        # First sample fires within one period, then every 10 accesses.
        assert 9 <= engine.sample_count <= 11

    def test_rate_approximates_inverse_period(self):
        engine = SamplingEngine(period=50, seed=3)
        for i in range(5000):
            engine.observe(access(addr=i * 8), 10.0)
        assert engine.sampling_rate() == pytest.approx(1 / 50, rel=0.2)

    def test_deterministic_for_seed(self):
        def collect(seed):
            engine = SamplingEngine(period=20, seed=seed)
            for i in range(500):
                engine.observe(access(addr=i * 64), float(i % 7))
            return [s.address for s in engine.samples]

        assert collect(42) == collect(42)
        assert collect(42) != collect(43)

    def test_threads_sampled_independently(self):
        engine = SamplingEngine(period=10, seed=0)
        for i in range(100):
            engine.observe(access(thread=0, addr=i * 8), 1.0)
            engine.observe(access(thread=1, addr=i * 8), 1.0)
        by_thread = engine.samples_by_thread()
        assert set(by_thread) == {0, 1}
        for samples in by_thread.values():
            assert 7 <= len(samples) <= 13

    def test_samples_carry_pmu_payload(self):
        engine = SamplingEngine(period=1, jitter=0.0)
        engine.observe(access(addr=0xABC0), 37.5)
        (sample,) = engine.samples
        assert sample.address == 0xABC0
        assert sample.latency == 37.5
        assert sample.ip == 0x400000
        assert not sample.is_write

    def test_min_latency_filters_eligibility(self):
        engine = SamplingEngine(period=1, jitter=0.0, min_latency=5.0)
        engine.observe(access(), 4.0)
        engine.observe(access(), 6.0)
        assert engine.eligible_accesses == 1
        assert engine.sample_count == 1

    def test_reset_clears_state(self):
        engine = SamplingEngine(period=1, jitter=0.0)
        engine.observe(access(), 1.0)
        engine.reset()
        assert engine.sample_count == 0
        assert engine.total_accesses == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SamplingEngine(period=0)
        with pytest.raises(ValueError):
            SamplingEngine(period=10, jitter=1.5)


class TestPEBSAndIBS:
    def test_pebs_ignores_stores(self):
        pebs = PEBSLoadLatencySampler(period=1, jitter=0.0)
        pebs.observe(access(write=True), 50.0)
        assert pebs.sample_count == 0
        pebs.observe(access(write=False), 50.0)
        assert pebs.sample_count == 1

    def test_pebs_ldlat_threshold(self):
        pebs = PEBSLoadLatencySampler(period=1, jitter=0.0, ldlat=10.0)
        pebs.observe(access(), 4.0)
        assert pebs.sample_count == 0

    def test_ibs_samples_stores_too(self):
        ibs = IBSSampler(period=1, jitter=0.0)
        ibs.observe(access(write=True), 50.0)
        assert ibs.sample_count == 1

    def test_data_source_classification(self):
        assert data_source(4.0) == "L1"
        assert data_source(12.0) == "L2"
        assert data_source(42.0) == "L3"
        assert data_source(220.0) == "DRAM"


class TestOverheadModel:
    def _plain(self, cycles=1e6, threads=1):
        return RunMetrics(cycles=cycles, accesses=100_000, num_threads=threads)

    def test_sequential_cost_is_per_sample(self):
        model = OverheadModel(interrupt_cycles=1000.0, analysis_cycles=500.0,
                              parallel_penalty_cycles=999.0, setup_cycles=0.0)
        assert model.monitored_cycles(self._plain(), 10) == 1e6 + 15_000

    def test_parallel_penalty_scales_with_extra_threads(self):
        model = OverheadModel(interrupt_cycles=1000.0, analysis_cycles=0.0,
                              parallel_penalty_cycles=100.0, setup_cycles=0.0)
        cycles = model.monitored_cycles(self._plain(threads=4), 10)
        assert cycles == 1e6 + 10 * (1000 + 300)

    def test_overhead_percent(self):
        model = OverheadModel(interrupt_cycles=1000.0, analysis_cycles=0.0,
                              setup_cycles=0.0)
        assert model.overhead_percent(self._plain(), 100) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            model.overhead_percent(RunMetrics(), 1)

    def test_instrumentation_slowdowns_match_paper_quotes(self):
        # On a memory-bound profile (~3 cycles/access) the published
        # comparators should land near their quoted slowdowns.
        plain = RunMetrics(cycles=300_000, accesses=100_000)
        assert REUSE_DISTANCE_INSTRUMENTATION.slowdown(plain) == pytest.approx(
            153, rel=0.01
        )
        assert ASLOP_INSTRUMENTATION.slowdown(plain) == pytest.approx(4.2, rel=0.01)
        assert 3.0 <= BURSTY_SAMPLING_INSTRUMENTATION.slowdown(plain) <= 5.0

    def test_instrumentation_rejects_empty_run(self):
        with pytest.raises(ValueError):
            InstrumentationModel(1.0).slowdown(RunMetrics())
