"""Unit tests for the bench history store and regression attribution."""

import json

import pytest

from repro.experiments.bench import check_regression
from repro.telemetry import history


def make_bench(stamp="20260101T000000", *, interpret=0.1, simulate=0.8,
               sample=0.05, e2e=1.0, acc=1_000_000, quick=False):
    """A minimal-but-complete bench payload (both engines)."""

    def layer(batched_s):
        scalar_s = batched_s * 4
        return {
            "scalar": {
                "seconds": scalar_s,
                "accesses": acc,
                "accesses_per_sec": acc / scalar_s,
            },
            "batched": {
                "seconds": batched_s,
                "accesses": acc,
                "accesses_per_sec": acc / batched_s,
            },
            "speedup": scalar_s / batched_s,
        }

    return {
        "schema_version": 1,
        "stamp": stamp,
        "quick": quick,
        "accesses": acc,
        "layers": {
            "interpret": layer(interpret),
            "simulate": layer(simulate),
            "sample": layer(sample),
        },
        "end_to_end": layer(e2e),
    }


class TestEntries:
    def test_rollup_covers_stages_and_end_to_end(self):
        rollup = history.stage_rollup(make_bench())
        assert set(rollup) == {"interpret", "simulate", "sample",
                               "end_to_end"}
        assert rollup["simulate"]["batched"] == pytest.approx(0.8)
        assert rollup["simulate"]["scalar"] == pytest.approx(3.2)

    def test_entry_id_is_content_addressed(self):
        bench = make_bench()
        first = history.make_entry(bench)
        second = history.make_entry(json.loads(json.dumps(bench)))
        assert first["id"] == second["id"]
        # Any content change — including provenance — moves the id.
        assert history.make_entry(bench, sha="abc1234")["id"] != first["id"]
        assert history.make_entry(make_bench(simulate=0.9))["id"] != \
            first["id"]

    def test_record_entry_is_idempotent(self, tmp_path):
        store = tmp_path / "history"
        path1, entry1 = history.record_entry(store, make_bench(), sha="aaa")
        mtime = path1.stat().st_mtime_ns
        path2, entry2 = history.record_entry(store, make_bench(), sha="aaa")
        assert path1 == path2
        assert entry1["id"] == entry2["id"]
        assert path1.stat().st_mtime_ns == mtime  # not rewritten
        assert list(store.glob("bench-*.json")) == [path1]


class TestLoadHistory:
    def test_sorted_by_stamp_and_ingests_legacy_files(self, tmp_path):
        store = tmp_path / "history"
        history.record_entry(store, make_bench("20260102T000000"))
        legacy = tmp_path / "BENCH_20260101T000000.json"
        legacy.write_text(json.dumps(make_bench("20260101T000000")))
        entries = history.load_history(store, legacy_dirs=(tmp_path,))
        assert [e["stamp"] for e in entries] == [
            "20260101T000000", "20260102T000000",
        ]
        # Legacy payloads come back wrapped as full entries.
        assert entries[0]["git_sha"] is None
        assert "stages" in entries[0]

    def test_duplicate_content_across_locations_dedupes(self, tmp_path):
        store = tmp_path / "history"
        bench = make_bench()
        history.record_entry(store, bench)
        (tmp_path / "BENCH_20260101T000000.json").write_text(
            json.dumps(bench)
        )
        entries = history.load_history(store, legacy_dirs=(tmp_path,))
        assert len(entries) == 1

    def test_unreadable_files_are_skipped(self, tmp_path):
        store = tmp_path / "history"
        history.record_entry(store, make_bench())
        (store / "bench-garbage.json").write_text("{not json")
        assert len(history.load_history(store, legacy_dirs=())) == 1


class TestLoadRef:
    def test_resolves_file_path_raw_or_entry(self, tmp_path):
        raw = tmp_path / "BENCH_x.json"
        raw.write_text(json.dumps(make_bench()))
        entry = history.load_ref(str(raw))
        assert "bench" in entry and "stages" in entry
        stored, _ = history.record_entry(tmp_path / "h", make_bench())
        assert history.load_ref(str(stored))["id"] == \
            json.loads(stored.read_text())["id"]

    def test_resolves_unique_id_prefix(self, tmp_path):
        store = tmp_path / "history"
        _, entry = history.record_entry(store, make_bench())
        resolved = history.load_ref(entry["id"][:6], store)
        assert resolved["id"] == entry["id"]

    def test_missing_and_ambiguous_refs_raise(self, tmp_path):
        store = tmp_path / "history"
        history.record_entry(store, make_bench("20260101T000000"))
        with pytest.raises(FileNotFoundError):
            history.load_ref("zzzzzz", store)
        # Every id shares the empty prefix -> ambiguous once there are 2.
        history.record_entry(store, make_bench("20260102T000000"))
        with pytest.raises(ValueError):
            history.load_ref("", store)


class TestTrend:
    def test_sparkline_spans_min_to_max(self):
        assert history.sparkline([0.0, 1.0]) == "▁█"
        assert history.sparkline([5.0, 5.0]) == "▄▄"
        assert history.sparkline([]) == ""

    def test_render_trend_lists_every_entry(self):
        entries = [
            history.make_entry(make_bench("20260101T000000"), sha="aaa111"),
            history.make_entry(make_bench("20260102T000000", e2e=2.0)),
        ]
        text = history.render_trend(entries)
        assert "2 snapshot(s)" in text
        assert "aaa111" in text
        for entry in entries:
            assert str(entry["id"])[:12] in text

    def test_render_trend_empty_store(self):
        assert "no snapshots" in history.render_trend([], history_dir="h")


class TestAttribution:
    def test_dominant_is_the_largest_absolute_delta(self):
        base = history.make_entry(make_bench())
        head = history.make_entry(
            make_bench(simulate=1.2, sample=0.06, e2e=1.5)
        )
        attribution = history.attribute(base, head)
        assert [d.stage for d in attribution.deltas] == [
            "simulate", "sample", "interpret",
        ]
        dominant = attribution.dominant
        assert dominant.stage == "simulate"
        assert dominant.delta_seconds == pytest.approx(0.4)
        assert attribution.end_to_end.delta_seconds == pytest.approx(0.5)
        rendered = attribution.render()
        assert "<- dominant" in rendered.splitlines()[2]

    def test_speedups_also_attribute(self):
        base = history.make_entry(make_bench())
        head = history.make_entry(make_bench(simulate=0.4))
        dominant = history.attribute(base, head).dominant
        assert dominant.stage == "simulate"
        assert dominant.delta_seconds == pytest.approx(-0.4)

    def test_raw_bench_payloads_work_without_wrapping(self):
        attribution = history.attribute(
            make_bench(), make_bench(simulate=1.0)
        )
        assert attribution.dominant.stage == "simulate"

    def test_scalar_engine_selectable(self):
        base = history.make_entry(make_bench())
        head = history.make_entry(make_bench(simulate=1.0))
        attribution = history.attribute(base, head, engine="scalar")
        assert attribution.engine == "scalar"
        assert attribution.dominant.delta_seconds == pytest.approx(0.8)

    def test_no_common_stages_yields_no_dominant(self):
        attribution = history.attribute({"stages": {}}, {"stages": {}})
        assert attribution.dominant is None
        assert "no per-stage timings" in attribution.render()


class TestCheckRegressionAttribution:
    def test_failure_message_names_the_guilty_stage(self, tmp_path):
        baseline = make_bench()
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(baseline))
        slow = make_bench(simulate=2.0, e2e=2.2)
        ok, message = check_regression(slow, str(baseline_path))
        assert not ok
        assert "REGRESSION" in message
        assert "simulate" in message
        assert "<- dominant" in message

    def test_pass_message_has_no_attribution(self, tmp_path):
        baseline = make_bench()
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(baseline))
        ok, message = check_regression(make_bench(), str(baseline_path))
        assert ok
        assert "attribution" not in message


def pipelined_bench(*, replayed=False):
    """A bench payload whose end-to-end repeat ran through the pipeline."""
    bench = make_bench()
    bench["end_to_end"]["pipeline"] = {
        "mode": "thread",
        "produced": 113,
        "consumed": 113,
        "producer_busy_s": 0.4,
        "producer_stall_s": 0.05,
        "consumer_stall_s": 0.02,
        "max_depth": 8,
        "replayed": replayed,
        "interpret_skipped": 1_015_808 if replayed else 0,
        "overlap_s": 0.38,
    }
    return bench


class TestPipelineRollup:
    def test_entry_lifts_the_pipeline_rollup(self):
        entry = history.make_entry(pipelined_bench())
        assert entry["pipeline"]["mode"] == "thread"
        assert entry["pipeline"]["producer_busy_s"] == pytest.approx(0.4)
        assert entry["pipeline"]["overlap_s"] == pytest.approx(0.38)

    def test_serial_entry_carries_no_pipeline_key(self):
        # Legacy ids must stay stable: a serial payload gains nothing.
        entry = history.make_entry(make_bench())
        assert "pipeline" not in entry

    def test_rollup_changes_the_entry_id(self):
        serial = history.make_entry(make_bench())
        piped = history.make_entry(pipelined_bench())
        assert serial["id"] != piped["id"]


class TestOverlapAttribution:
    def test_pipelined_entry_gets_an_overlap_note(self):
        base = history.make_entry(make_bench())
        head = history.make_entry(pipelined_bench())
        attribution = history.attribute(base, head)
        assert len(attribution.overlap_notes) == 1
        note = attribution.overlap_notes[0]
        assert note.startswith("head ran pipelined")
        assert "hidden under" in note
        assert "sum to more than the end-to-end wall" in note
        assert "note: head ran pipelined" in attribution.render()

    def test_replayed_entry_notes_skipped_interpret_work(self):
        base = history.make_entry(pipelined_bench(replayed=True))
        head = history.make_entry(make_bench())
        attribution = history.attribute(base, head)
        assert len(attribution.overlap_notes) == 1
        note = attribution.overlap_notes[0]
        assert note.startswith("base replayed its trace")
        assert "1,015,808 accesses never interpreted" in note

    def test_serial_entries_get_no_notes(self):
        base = history.make_entry(make_bench())
        head = history.make_entry(make_bench(simulate=1.0))
        attribution = history.attribute(base, head)
        assert attribution.overlap_notes == []
        assert "note:" not in attribution.render()

    def test_scalar_engine_attribution_skips_notes(self):
        # The pipeline rollup describes the batched end-to-end repeat;
        # scalar attribution must not borrow it.
        base = history.make_entry(make_bench())
        head = history.make_entry(pipelined_bench())
        attribution = history.attribute(base, head, engine="scalar")
        assert attribution.overlap_notes == []
