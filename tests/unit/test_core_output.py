"""Unit tests for the analyzer output package."""

import json

import pytest

from repro.core import (
    OfflineAnalyzer,
    plans_from_dict,
    plans_to_dict,
    read_plans,
    write_outputs,
)
from repro.layout import SplitPlan, apply_split
from repro.profiler import Monitor
from repro.workloads import TREE

from ..conftest import FIGURE1_TYPE, build_figure1


@pytest.fixture(scope="module")
def analyzed():
    bound = build_figure1(n=4096)
    run = Monitor(sampling_period=97).run(bound)
    return run, OfflineAnalyzer().analyze(run)


class TestWriteOutputs:
    def test_minimal_package(self, analyzed, tmp_path):
        _, report = analyzed
        paths = write_outputs(report, tmp_path)
        names = {p.name for p in paths}
        assert "report.txt" in names
        assert "Arr.dot" in names
        assert (tmp_path / "report.txt").read_text().startswith("== StructSlim")

    def test_full_package(self, analyzed, tmp_path):
        run, report = analyzed
        paths = write_outputs(
            report, tmp_path, structs={"Arr": FIGURE1_TYPE}, run=run
        )
        names = {p.name for p in paths}
        assert names >= {"report.txt", "Arr.dot", "plans.json",
                         "structure.xml", "profile.json"}

    def test_dot_file_is_the_advice_graph(self, analyzed, tmp_path):
        _, report = analyzed
        write_outputs(report, tmp_path)
        dot = (tmp_path / "Arr.dot").read_text()
        assert dot.startswith('graph "Arr"')

    def test_structure_file_parses_back(self, analyzed, tmp_path):
        from repro.binary import parse_structure

        run, report = analyzed
        write_outputs(report, tmp_path, run=run)
        parsed = parse_structure((tmp_path / "structure.xml").read_text())
        assert parsed.program == "figure1"
        assert len(parsed.loops) == 2

    def test_creates_missing_directories(self, analyzed, tmp_path):
        _, report = analyzed
        nested = tmp_path / "a" / "b"
        write_outputs(report, nested)
        assert (nested / "report.txt").exists()


class TestPlansRoundTrip:
    def test_json_roundtrip(self, tmp_path):
        plans = {
            "tree_nodes": SplitPlan(
                TREE.name,
                (("x", "y", "next"), ("sz", "left", "right", "prev")),
            )
        }
        restored = plans_from_dict(plans_to_dict(plans))
        assert restored["tree_nodes"].groups == plans["tree_nodes"].groups

    def test_read_plans_from_package(self, analyzed, tmp_path):
        _, report = analyzed
        write_outputs(report, tmp_path, structs={"Arr": FIGURE1_TYPE})
        plans = read_plans(tmp_path / "plans.json")
        groups = {frozenset(g) for g in plans["Arr"].groups}
        assert groups == {frozenset({"a", "c"}), frozenset({"b", "d"})}

    def test_loaded_plans_are_applicable(self, analyzed, tmp_path):
        _, report = analyzed
        write_outputs(report, tmp_path, structs={"Arr": FIGURE1_TYPE})
        plans = read_plans(tmp_path / "plans.json")
        layout = apply_split(FIGURE1_TYPE, plans["Arr"])
        assert len(layout.structs) == 2
