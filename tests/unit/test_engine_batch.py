"""Unit tests for the columnar batched engine's building blocks.

The property suite (test_prop_engine_parity) checks whole-pipeline
equivalence over random programs; these tests pin the individual
contracts — batch construction per index kind, the small-loop and
error fallbacks, hierarchy batch parity per replacement policy, the
sampler's batched countdown, and the satellite fixes that rode along
(first-sample stagger, engine validation, bench regression gate).
"""

import json

import pytest

from repro.layout import INT, StructType
from repro.experiments.bench import check_regression, write_bench
from repro.memsim.engine import simulate
from repro.memsim.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memsim.tlb import TLBConfig
from repro.profiler.monitor import Monitor
from repro.program import (
    Access,
    AccessBatch,
    Function,
    Loop,
    WorkloadBuilder,
    affine,
)
from repro.program.batch import MIN_BATCH_TRIPS
from repro.program.interp import Interpreter, TraceError
from repro.program.ir import Indirect, Mod
from repro.sampling.ibs import IBSSampler
from repro.sampling.other_pmus import DEARSampler
from repro.sampling.pebs import PEBSLoadLatencySampler

ELEM = StructType("s", [("x", INT)])
ELEMENTS = 64


def program(index, stop=16, is_write=False):
    """One loop over one access into a 64-element array of structs."""
    builder = WorkloadBuilder("unit")
    builder.add_aos(ELEM, ELEMENTS, name="A")
    loop = Loop(
        line=1,
        var="i",
        start=0,
        stop=stop,
        body=[Access(line=2, array="A", field="x", index=index,
                     is_write=is_write)],
        end_line=3,
    )
    return builder.build([Function("main", [loop])])


def expand(items):
    out = []
    for item in items:
        if isinstance(item, AccessBatch):
            out.extend(item)
        else:
            out.append(item)
    return out


class TestBatchConstruction:
    def test_strided_loop_emits_one_batch(self):
        bound = program(affine("i"), stop=16)
        items = list(Interpreter(bound).run_batched())
        batches = [i for i in items if isinstance(i, AccessBatch)]
        assert len(batches) == 1
        batch = batches[0]
        assert len(batch) == 16
        addresses = list(batch.address)
        strides = {b - a for a, b in zip(addresses, addresses[1:])}
        assert strides == {addresses[1] - addresses[0]}

    @pytest.mark.parametrize(
        "index",
        [
            affine("i", 2, 1),
            affine("i", -1, 15),
            Mod(affine("i", 3, -5), ELEMENTS),
            Mod(affine("i", -2, 7), 13),
            Indirect.of([5, 3, 2, 7, 1], Mod(affine("i"), 5)),
            Indirect.of(list(range(ELEMENTS)), Mod(affine("i", -3, 1), ELEMENTS)),
        ],
    )
    def test_each_index_kind_expands_to_the_scalar_trace(self, index):
        bound = program(index, stop=16)
        scalar = list(Interpreter(bound).run())
        assert expand(Interpreter(bound).run_batched()) == scalar

    def test_small_loops_stay_scalar(self):
        bound = program(affine("i"), stop=MIN_BATCH_TRIPS - 1)
        items = list(Interpreter(bound).run_batched())
        assert not any(isinstance(i, AccessBatch) for i in items)
        assert items == list(Interpreter(bound).run())

    def test_out_of_bounds_raises_identically(self):
        # i*2 walks past count=64 at i=32; both engines must fail at
        # the same trace position with the same message.
        bound = program(affine("i", 2, 0), stop=40)

        def drain(items):
            seen = []
            with pytest.raises(TraceError) as err:
                for item in items:
                    seen.append(item)
            return expand(seen), str(err.value)

        scalar_items, scalar_msg = drain(Interpreter(bound).run())
        batched_items, batched_msg = drain(Interpreter(bound).run_batched())
        assert batched_msg == scalar_msg
        assert batched_items == scalar_items


class TestHierarchyBatch:
    # Repeats (hits), a spread wide enough to force evictions, and a
    # revisit of evicted lines (re-misses).
    ADDRESSES = [0, 64, 0, 4096, 64, 8] + [
        640 * k for k in range(96)
    ] + [0, 64, 4096]

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    def test_batch_matches_scalar_walk(self, policy):
        config = HierarchyConfig(replacement=policy)
        sizes = [4] * len(self.ADDRESSES)
        reference = MemoryHierarchy(config, 1)
        expected = [
            reference.access(0, a, s, False)
            for a, s in zip(self.ADDRESSES, sizes)
        ]
        hierarchy = MemoryHierarchy(config, 1)
        got = hierarchy.access_batch(self.ADDRESSES, sizes)
        assert got == expected
        for mine, theirs in zip(
            (hierarchy.l3, hierarchy.cores[0].l1, hierarchy.cores[0].l2),
            (reference.l3, reference.cores[0].l1, reference.cores[0].l2),
        ):
            assert (mine.hits, mine.misses, mine.evictions) == (
                theirs.hits, theirs.misses, theirs.evictions
            )
        assert hierarchy.dram_accesses == reference.dram_accesses

    def test_split_accesses_match_scalar(self):
        # size 8 at line_size-4 crosses a line boundary: the batch
        # path must hand these to the scalar walk and still agree.
        config = HierarchyConfig()
        addresses = [config.line_size - 4, 0, 2 * config.line_size - 4]
        sizes = [8, 4, 8]
        reference = MemoryHierarchy(config, 1)
        expected = [
            reference.access(0, a, s, False) for a, s in zip(addresses, sizes)
        ]
        hierarchy = MemoryHierarchy(config, 1)
        assert hierarchy.access_batch(addresses, sizes) == expected
        assert hierarchy.dram_accesses == reference.dram_accesses

    def run_general_parity(self, config, num_cores):
        """Batch vs per-access parity on a non-simple configuration."""
        addresses = self.ADDRESSES
        sizes = [4] * len(addresses)
        writes = [k % 3 == 0 for k in range(len(addresses))]
        threads = [k % (num_cores + 1) for k in range(len(addresses))]
        reference = MemoryHierarchy(config, num_cores)
        expected = [
            reference.access(t % num_cores, a, s, w)
            for a, s, w, t in zip(addresses, sizes, writes, threads)
        ]
        hierarchy = MemoryHierarchy(config, num_cores)
        assert hierarchy.supports_batch
        got = hierarchy.access_batch(addresses, sizes, writes, threads)
        assert got == expected
        assert hierarchy.miss_summary() == reference.miss_summary()

    def test_batch_covers_multicore_coherence(self):
        # Two cores with the MESI directory engaged: the write and
        # thread columns must reach the directory in trace order.
        self.run_general_parity(HierarchyConfig(), 2)

    def test_batch_covers_prefetcher(self):
        self.run_general_parity(HierarchyConfig(prefetch_degree=2), 1)

    def test_batch_covers_tlb(self):
        config = HierarchyConfig(
            tlb=TLBConfig(l1_entries=8, l1_ways=4, l2_entries=16, l2_ways=4)
        )
        self.run_general_parity(config, 1)

    def test_every_configuration_supports_batch(self):
        for config, cores in [
            (HierarchyConfig(), 4),
            (HierarchyConfig(prefetch_degree=2), 1),
            (HierarchyConfig(tlb=TLBConfig()), 2),
            (HierarchyConfig(replacement="random"), 3),
        ]:
            assert MemoryHierarchy(config, cores).supports_batch


class TestVectorWalk:
    """The numpy tag-array walk on large simple-config batches."""

    def make(self, policy="lru", vector_min=1):
        hier = MemoryHierarchy(HierarchyConfig(replacement=policy), 1)
        hier.VECTOR_MIN_BATCH = vector_min
        return hier

    def columns(self):
        # Hits, conflict evictions, duplicate missing lines in one
        # batch (unsafe replay), and line-crossing splits.
        config = HierarchyConfig()
        line = config.line_size
        addresses = (
            [0, 64, 0, 4096, 64]
            + [640 * k for k in range(96)]
            + [640 * k for k in range(96)]
            + [line - 4, 2 * line - 4]
            + [0, 64, 4096, 0, 4096]
        )
        sizes = [4] * (len(addresses) - 7) + [8, 8] + [4] * 5
        return addresses, sizes

    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    def test_vector_walk_matches_scalar(self, policy):
        vectorwalk = pytest.importorskip("repro.memsim.vectorwalk")
        assert vectorwalk.HAVE_NUMPY
        addresses, sizes = self.columns()
        reference = MemoryHierarchy(HierarchyConfig(replacement=policy), 1)
        expected = [
            reference.access(0, a, s, False)
            for a, s in zip(addresses, sizes)
        ]
        hierarchy = self.make(policy)
        got = hierarchy.access_batch(addresses, sizes)
        assert hierarchy._vector_state == 1
        assert list(got) == expected
        for mine, theirs in zip(
            (hierarchy.l3, hierarchy.cores[0].l1, hierarchy.cores[0].l2),
            (reference.l3, reference.cores[0].l1, reference.cores[0].l2),
        ):
            assert (mine.hits, mine.misses, mine.evictions) == (
                theirs.hits, theirs.misses, theirs.evictions
            )
        assert hierarchy.dram_accesses == reference.dram_accesses

    def test_sequential_batches_share_state(self):
        pytest.importorskip("repro.memsim.vectorwalk")
        addresses, sizes = self.columns()
        reference = MemoryHierarchy(HierarchyConfig(), 1)
        hierarchy = self.make()
        expected, got = [], []
        for _ in range(3):
            expected.extend(
                reference.access(0, a, s, False)
                for a, s in zip(addresses, sizes)
            )
            got.extend(hierarchy.access_batch(addresses, sizes))
        assert got == expected
        assert hierarchy.l3.hits == reference.l3.hits

    def test_scalar_access_works_after_promotion(self):
        # A promoted hierarchy must still serve per-access calls (the
        # tag arrays implement the scalar protocol too).
        pytest.importorskip("repro.memsim.vectorwalk")
        addresses, sizes = self.columns()
        reference = MemoryHierarchy(HierarchyConfig(), 1)
        hierarchy = self.make()
        assert list(hierarchy.access_batch(addresses, sizes)) == [
            reference.access(0, a, s, False)
            for a, s in zip(addresses, sizes)
        ]
        assert hierarchy.access(0, 12345, 4, False) == reference.access(
            0, 12345, 4, False
        )

    def test_random_policy_never_promotes(self):
        # Random replacement replays an RNG stream whose draw order the
        # vector walk cannot reproduce: it must stay on the list walk.
        addresses, sizes = self.columns()
        hierarchy = self.make("random")
        reference = MemoryHierarchy(HierarchyConfig(replacement="random"), 1)
        expected = [
            reference.access(0, a, s, False)
            for a, s in zip(addresses, sizes)
        ]
        assert hierarchy.access_batch(addresses, sizes) == expected
        assert hierarchy._vector_state == 0


class TestExpansionProgress:
    def test_expanded_batches_publish_progress_inside_the_loop(self, monkeypatch):
        # When a hierarchy opts out of the columnar path the engine
        # expands each batch per access; progress must be published at
        # PROGRESS_EVERY granularity *inside* the expansion loop, not
        # once per (potentially huge) batch.
        import repro.memsim.engine as engine_mod
        from repro.telemetry import events
        from repro.telemetry.events import EventBus

        monkeypatch.setattr(engine_mod, "PROGRESS_EVERY", 16)
        monkeypatch.setattr(
            MemoryHierarchy, "supports_batch", property(lambda self: False)
        )
        bound = program(Mod(affine("i", 1, 0), ELEMENTS), stop=200)
        trace = list(Interpreter(bound).run_batched())
        batches = [t for t in trace if isinstance(t, AccessBatch)]
        assert batches and max(b.length for b in batches) > 64
        seen = []
        bus = EventBus()
        bus.subscribe(
            lambda e: seen.append(e) if e.type == "stage-progress" else None
        )
        with events.use(bus):
            simulate(iter(trace), config=HierarchyConfig())
        assert len(seen) >= 4
        assert all(e.data["stage"] == "simulate" for e in seen)
        dones = [e.data["done"] for e in seen]
        assert dones == sorted(dones)
        # Granularity: consecutive publications are ~PROGRESS_EVERY
        # apart, so at least one pair lands inside a single batch.
        assert min(b - a for a, b in zip(dones, dones[1:])) <= 2 * 16


class TestSamplerBatch:
    def run_both(self, make_sampler, bound, num_threads=1):
        state = []
        for batched in (False, True):
            interp = Interpreter(bound, num_threads=num_threads)
            trace = interp.run_batched() if batched else interp.run()
            sampler = make_sampler()
            simulate(
                trace,
                hierarchy=MemoryHierarchy(HierarchyConfig(), num_threads),
                observer=sampler.observe,
            )
            state.append((
                sampler.samples,
                sampler.total_accesses,
                sampler.eligible_accesses,
                sampler.periods_drawn,
                sampler._countdown,
            ))
        return state

    @pytest.mark.parametrize(
    "make_sampler",
        [
            lambda: PEBSLoadLatencySampler(7, jitter=0.3, seed=5),
            lambda: PEBSLoadLatencySampler(7, jitter=0.0, ldlat=0.0, seed=5),
            lambda: IBSSampler(5, jitter=0.2, seed=5),
            lambda: DEARSampler(3, jitter=0.1, seed=5),
        ],
    )
    def test_observe_batch_is_bit_identical(self, make_sampler):
        bound = program(Mod(affine("i", 7, 3), ELEMENTS), stop=200)
        scalar, batched = self.run_both(make_sampler, bound)
        assert scalar == batched

    def test_unit_latency_sampler_degrades_batched_column(self):
        bound = program(Mod(affine("i"), ELEMENTS), stop=400)
        scalar, batched = self.run_both(lambda: DEARSampler(11, seed=2), bound)
        assert scalar == batched
        assert all(s.latency == 1.0 for s in batched[0])

    def test_first_sample_stagger_uses_jittered_period(self):
        # Satellite fix: the initial countdown must come from
        # _next_period(), so it lands in the jitter band *and* is
        # recorded in periods_drawn like every later draw.
        period, jitter = 100, 0.2
        sampler = PEBSLoadLatencySampler(
            period, jitter=jitter, ldlat=0.0, seed=9
        )
        bound = program(affine("i"), stop=16)
        simulate(
            Interpreter(bound).run(),
            hierarchy=MemoryHierarchy(HierarchyConfig(), 1),
            observer=sampler.observe,
        )
        assert sampler.periods_drawn, "stagger draw must be recorded"
        spread = int(period * jitter)
        first = sampler.periods_drawn[0]
        assert period - spread <= first <= period + spread


class TestEngineSelection:
    def test_monitor_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            Monitor(engine="vectorized")

    def test_monitor_accepts_both_engines(self):
        assert Monitor(engine="scalar").engine == "scalar"
        assert Monitor().engine == "batched"


class TestBenchArtifacts:
    PAYLOAD = {
        "schema_version": 1,
        "stamp": "20260101T000000",
        "end_to_end": {"batched": {"accesses_per_sec": 1000.0}},
    }

    def baseline(self, tmp_path, rate):
        payload = {"end_to_end": {"batched": {"accesses_per_sec": rate}}}
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_write_bench_names_file_from_stamp(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = write_bench(dict(self.PAYLOAD))
        assert path.name == "BENCH_20260101T000000.json"
        assert json.loads(path.read_text())["schema_version"] == 1

    def test_check_regression_passes_within_tolerance(self, tmp_path):
        ok, message = check_regression(
            dict(self.PAYLOAD), self.baseline(tmp_path, 1200.0)
        )
        assert ok
        assert "REGRESSION" not in message

    def test_check_regression_fails_beyond_tolerance(self, tmp_path):
        ok, message = check_regression(
            dict(self.PAYLOAD), self.baseline(tmp_path, 2000.0)
        )
        assert not ok
        assert "REGRESSION" in message
