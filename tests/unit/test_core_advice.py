"""Unit tests for clustering, advice, dot output, and split plans."""

import pytest

from repro.core import build_advice, cluster_offsets, compute_affinities, group_latencies
from repro.core.affinity import AffinityMatrix
from repro.core.structsize import RecoveredField, RecoveredStruct
from repro.layout import INT, StructType
from repro.workloads import F1_NEURON, TREE


def matrix(offsets, pairs):
    values = {frozenset(k): v for k, v in pairs.items()}
    return AffinityMatrix(offsets=tuple(offsets), values=values)


class TestClustering:
    def test_threshold_partitions(self):
        m = matrix([0, 8, 16], {(0, 8): 0.9, (0, 16): 0.1, (8, 16): 0.2})
        assert cluster_offsets(m, threshold=0.5) == [[0, 8], [16]]

    def test_transitive_closure(self):
        m = matrix([0, 8, 16], {(0, 8): 0.9, (8, 16): 0.9, (0, 16): 0.0})
        assert cluster_offsets(m) == [[0, 8, 16]]

    def test_all_isolated(self):
        m = matrix([0, 8], {(0, 8): 0.0})
        assert cluster_offsets(m) == [[0], [8]]

    def test_threshold_is_inclusive(self):
        m = matrix([0, 8], {(0, 8): 0.5})
        assert cluster_offsets(m, threshold=0.5) == [[0, 8]]

    def test_groups_sorted_big_first(self):
        m = matrix([0, 8, 16, 24], {(16, 24): 0.9, (0, 8): 0.0,
                                    (0, 16): 0.0, (0, 24): 0.0, (8, 16): 0.0,
                                    (8, 24): 0.0})
        groups = cluster_offsets(m)
        assert groups[0] == [16, 24]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            cluster_offsets(matrix([0], {}), threshold=1.5)

    def test_group_latencies(self):
        assert group_latencies([[0, 8], [16]], {0: 1.0, 8: 2.0, 16: 5.0}) == [3.0, 5.0]


def art_like_advice():
    offsets = [0, 8, 16, 24, 32, 40, 48]  # I W X V U P Q sampled; R missing
    fields = {
        o: RecoveredField(offset=o, latency=lat)
        for o, lat in zip(offsets, (5.5, 2.0, 3.7, 3.7, 7.1, 73.3, 4.7))
    }
    recovered = RecoveredStruct(
        identity=("heap", "f1_layer"), size=64, fields=fields,
        total_latency=100.0,
    )
    pairs = {(i, j): 0.0 for n, i in enumerate(offsets) for j in offsets[n + 1:]}
    pairs[(0, 32)] = 0.86   # I-U
    pairs[(16, 48)] = 1.0   # X-Q
    pairs[(32, 40)] = 0.05  # U-P
    return build_advice(("heap", "f1_layer"), recovered, matrix(offsets, pairs))


class TestAdvice:
    def test_clusters_reproduce_figure7(self):
        advice = art_like_advice()
        clusters = {tuple(g) for g in advice.clusters}
        assert (0, 32) in clusters     # {I, U}
        assert (16, 48) in clusters    # {X, Q}
        assert (40,) in clusters       # {P}

    def test_split_plan_groups_unobserved_cold_fields_together(self):
        plan = art_like_advice().split_plan(F1_NEURON)
        groups = {frozenset(g) for g in plan.groups}
        assert frozenset({"I", "U"}) in groups
        assert frozenset({"X", "Q"}) in groups
        assert frozenset({"P"}) in groups
        assert frozenset({"R"}) in groups  # the lone unobserved field

    def test_should_split(self):
        assert art_like_advice().should_split()

    def test_dot_graph_contains_clusters_and_edges(self):
        dot = art_like_advice().to_dot()
        assert dot.startswith('graph "f1_layer"')
        assert "subgraph cluster_0" in dot
        assert 'o0 -- o32 [label="0.86"' in dot
        assert "style=bold" in dot and "style=dashed" in dot

    def test_describe_names_fields_with_struct(self):
        text = art_like_advice().describe(F1_NEURON)
        assert "(P)" in text and "73.3%" in text

    def test_describe_without_struct_uses_offsets(self):
        text = art_like_advice().describe()
        assert "@40" in text

    def test_lonely_offset_gets_own_cluster(self):
        # An offset with latency but no affinity pairs must still appear.
        recovered = RecoveredStruct(
            identity=("heap", "x"), size=8,
            fields={0: RecoveredField(offset=0, latency=1.0)},
            total_latency=1.0,
        )
        advice = build_advice(("heap", "x"), recovered,
                              AffinityMatrix(offsets=(), values={}))
        assert advice.clusters == [[0]]

    def test_multifield_offsets_mapping_dedupes(self):
        # Two recovered offsets inside one wide field map to one name.
        wide = StructType("w", [("blob", INT), ("tail", INT)])
        recovered = RecoveredStruct(
            identity=("heap", "w"), size=8,
            fields={0: RecoveredField(0, 1.0), 4: RecoveredField(4, 1.0)},
            total_latency=2.0,
        )
        m = matrix([0, 4], {(0, 4): 1.0})
        plan = build_advice(("heap", "w"), recovered, m).split_plan(wide)
        assert plan.is_identity()
