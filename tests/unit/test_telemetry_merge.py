"""Edge cases for cross-process telemetry merge (capture/absorb)."""

import itertools

import pytest

from repro import telemetry
from repro.telemetry.merge import (
    SessionPayload,
    absorb_payload,
    capture_session,
)


def fake_clock():
    counter = itertools.count()
    return lambda: float(next(counter))


@pytest.fixture
def parent_session():
    session = telemetry.start(fake_clock())
    try:
        yield session
    finally:
        telemetry.stop()


def worker_session(build):
    """Run ``build`` against a private session; return its payload."""
    session = telemetry.TelemetrySession(
        tracer=telemetry.Tracer(fake_clock()),
        metrics=telemetry.MetricsRegistry(),
    )
    build(session)
    return capture_session(session)


class TestEmptyHistogramMerge:
    def test_unobserved_histogram_absorbs_without_inflating(
        self, parent_session
    ):
        buckets = (1.0, 10.0)

        # Parent has observations; the worker registered the same
        # histogram but never observed into it (a zero-sample run).
        parent_session.metrics.histogram(
            "repro_lat", buckets, help="lat"
        ).observe(5.0)
        payload = worker_session(
            lambda s: s.metrics.histogram("repro_lat", buckets, help="lat")
        )
        absorb_payload(parent_session, payload)

        merged = parent_session.metrics.get("repro_lat")
        assert merged.count == 1
        assert merged.sum == pytest.approx(5.0)
        assert sum(merged.counts) == 1

    def test_both_sides_empty_stays_empty(self, parent_session):
        buckets = (1.0, 10.0)
        parent_session.metrics.histogram("repro_lat", buckets, help="lat")
        payload = worker_session(
            lambda s: s.metrics.histogram("repro_lat", buckets, help="lat")
        )
        absorb_payload(parent_session, payload)
        merged = parent_session.metrics.get("repro_lat")
        assert merged.count == 0
        assert merged.sum == 0.0

    def test_mismatched_buckets_raise(self, parent_session):
        parent_session.metrics.histogram("repro_lat", (1.0,), help="lat")
        payload = worker_session(
            lambda s: s.metrics.histogram("repro_lat", (2.0,), help="lat")
        )
        with pytest.raises(ValueError):
            absorb_payload(parent_session, payload)


class TestZeroTaskAbsorbOrdering:
    def test_empty_payload_changes_nothing(self, parent_session):
        parent_session.metrics.counter("repro_total", help="t").inc(7)
        with parent_session.tracer.span("run"):
            pass
        absorb_payload(parent_session, SessionPayload())
        assert parent_session.metrics.get("repro_total").value == 7
        assert len(parent_session.tracer.roots) == 1
        assert parent_session.overhead_accounts == []

    def test_gauge_order_with_interleaved_empty_runs(self, parent_session):
        """Last write wins in task order even across empty payloads."""
        parent_session.metrics.gauge("repro_depth", help="d").set(1.0)

        first = worker_session(
            lambda s: s.metrics.gauge("repro_depth", help="d").set(2.0)
        )
        empty = SessionPayload()  # a worker that ran zero tasks
        last = worker_session(
            lambda s: s.metrics.gauge("repro_depth", help="d").set(3.0)
        )
        for payload in (first, empty, last):
            absorb_payload(parent_session, payload)
        assert parent_session.metrics.get("repro_depth").value == 3.0

    def test_empty_then_counting_payloads_commute(self, parent_session):
        counting = worker_session(
            lambda s: s.metrics.counter("repro_total", help="t").inc(4)
        )
        absorb_payload(parent_session, SessionPayload())
        absorb_payload(parent_session, counting)
        absorb_payload(parent_session, SessionPayload())
        assert parent_session.metrics.get("repro_total").value == 4


class TestOneSidedCounterMerge:
    def test_worker_metric_absent_in_parent_is_created(
        self, parent_session
    ):
        payload = worker_session(
            lambda s: s.metrics.counter(
                "repro_only_worker_total", help="w", level="L1"
            ).inc(5)
        )
        absorb_payload(parent_session, payload)
        merged = parent_session.metrics.get(
            "repro_only_worker_total", level="L1"
        )
        assert merged.value == 5
        assert merged.help == "w"

    def test_parent_metric_absent_in_worker_is_untouched(
        self, parent_session
    ):
        parent_session.metrics.counter(
            "repro_only_parent_total", help="p"
        ).inc(9)
        payload = worker_session(
            lambda s: s.metrics.counter("repro_other_total", help="o").inc(1)
        )
        absorb_payload(parent_session, payload)
        assert parent_session.metrics.get(
            "repro_only_parent_total"
        ).value == 9
        assert parent_session.metrics.get("repro_other_total").value == 1

    def test_label_sets_merge_independently(self, parent_session):
        parent_session.metrics.counter(
            "repro_hits_total", help="h", level="L1"
        ).inc(2)
        payload = worker_session(
            lambda s: s.metrics.counter(
                "repro_hits_total", help="h", level="L2"
            ).inc(3)
        )
        absorb_payload(parent_session, payload)
        assert parent_session.metrics.get(
            "repro_hits_total", level="L1"
        ).value == 2
        assert parent_session.metrics.get(
            "repro_hits_total", level="L2"
        ).value == 3
