"""Unit tests for the Table 3/4 builders and the evaluation orchestrator."""

import pytest

from repro.core.pipeline import OptimizationResult
from repro.experiments import (
    EvaluationReport,
    PAPER_TABLE3,
    PAPER_TABLE4,
    Table,
    run_benchmark,
    run_complete_evaluation,
    table3,
    table4,
)
from repro.memsim import RunMetrics


def fake_result(name, orig_cycles, opt_cycles, overhead=3.0):
    original = RunMetrics(name=name, cycles=orig_cycles, l1_misses=100,
                          l2_misses=50, l3_misses=10, accesses=1000)
    optimized = RunMetrics(name=name, cycles=opt_cycles, l1_misses=40,
                           l2_misses=10, l3_misses=9, accesses=1000)

    class _Profiled:
        overhead_percent = overhead
        pmu = "PEBS-LL"
        sampling_period = 503
        deployment_period = 10_000
        overhead_account = None

    return OptimizationResult(
        workload=name, report=None, plans={}, original=original,
        optimized=optimized, profiled=_Profiled(),
    )


class TestTableBuilders:
    def test_table3_rows_and_average(self):
        results = {
            "179.ART": fake_result("179.ART", 200.0, 100.0),
            "TSP": fake_result("TSP", 110.0, 100.0),
        }
        table = table3(results)
        assert table.column("benchmark") == ["179.ART", "TSP", "average"]
        speedups = table.column("speedup")
        assert speedups[0] == pytest.approx(2.0)
        assert speedups[-1] == pytest.approx(1.55)  # mean of 2.0 and 1.1

    def test_table3_carries_paper_columns(self):
        results = {"179.ART": fake_result("179.ART", 2.0, 1.0)}
        table = table3(results)
        assert table.column("paper speedup")[0] == PAPER_TABLE3["179.ART"][0]

    def test_table4_reductions(self):
        results = {"NN": fake_result("NN", 2.0, 1.0)}
        table = table4(results)
        row = table.rows[0]
        assert row[1] == pytest.approx(60.0)   # L1: 100 -> 40
        assert row[2] == pytest.approx(80.0)   # L2: 50 -> 10
        assert row[4] == PAPER_TABLE4["NN"][0]

    def test_run_benchmark_produces_full_result(self):
        result = run_benchmark("462.libquantum", scale=0.15)
        assert result.workload == "462.libquantum"
        assert result.speedup > 1.0
        assert result.report.hot


class TestResultsJson:
    def test_rows_carry_provenance_and_paper_values(self):
        from repro.experiments.optimization import results_json

        payload = results_json({
            "179.ART": fake_result("179.ART", 200.0, 100.0),
            "TSP": fake_result("TSP", 110.0, 100.0),
        })
        assert len(payload["benchmarks"]) == 2
        row = payload["benchmarks"][0]
        assert row["benchmark"] == "179.ART"
        assert row["pmu"] == "PEBS-LL"
        assert row["sampling_period"] == 503
        assert row["deployment_period"] == 10_000
        assert row["speedup"] == pytest.approx(2.0)
        assert row["miss_reduction_percent"]["L1"] == pytest.approx(60.0)
        assert row["paper"]["speedup"] == PAPER_TABLE3["179.ART"][0]
        assert (row["paper"]["miss_reduction_percent"]["L1"]
                == PAPER_TABLE4["179.ART"][0])
        summary = payload["summary"]
        assert summary["mean_speedup"] == pytest.approx(1.55)
        assert summary["paper_mean_overhead_percent"] == 7.1


class TestEvaluationReport:
    def test_sections_render_in_order(self):
        report = EvaluationReport()
        a = Table("first", ["x"])
        a.add_row(1)
        b = Table("second", ["y"])
        b.add_row(2)
        report.add("a", a)
        report.add("b", b)
        text = report.render()
        assert text.index("first") < text.index("second")

    def test_complete_evaluation_small(self):
        messages = []
        report = run_complete_evaluation(
            scale=0.15, include_suites=False, progress=messages.append
        )
        assert {"table3", "table4", "table5", "table6", "figure6", "eq4"} <= set(
            report.tables
        )
        assert any("optimization" in m for m in messages)
        text = report.render()
        assert "Table 3" in text and "Eq 4" in text
