"""Unit tests for the instrumentation-based comparator profilers."""

import pytest

from repro.baselines import (
    AslopProfiler,
    BurstySamplingProfiler,
    FrequencyAffinityProfiler,
    ReuseDistanceProfiler,
)
from repro.binary import LoopMap
from repro.memsim import HierarchyConfig, simulate
from repro.profiler import DataObjectRegistry
from repro.program import Interpreter

from ..conftest import FIGURE1_TYPE, build_figure1


@pytest.fixture(scope="module")
def env():
    bound = build_figure1(n=2048)
    registry = DataObjectRegistry.from_address_space(bound.space)
    loop_map = LoopMap(bound.program)
    structs = {"Arr": FIGURE1_TYPE}
    return bound, registry, loop_map, structs


def run_with(bound, *observers):
    def fan_out(access, latency):
        for obs in observers:
            obs.observe(access, latency)

    return simulate(
        Interpreter(bound).run(),
        config=HierarchyConfig.small(),
        observer=fan_out,
        name=bound.name,
    )


class TestFrequencyProfiler:
    def test_counts_every_access(self, env):
        bound, registry, loop_map, structs = env
        profiler = FrequencyAffinityProfiler(registry, loop_map, structs)
        run_with(bound, profiler)
        table = profiler.tables["Arr"]
        total = sum(e.latency for e in table.values())
        assert total == 4 * 2048  # a, c, b, d once per element

    def test_advises_figure1_split(self, env):
        bound, registry, loop_map, structs = env
        profiler = FrequencyAffinityProfiler(registry, loop_map, structs)
        run_with(bound, profiler)
        plan = profiler.advise()["Arr"]
        groups = {frozenset(g) for g in plan.groups}
        assert groups == {frozenset({"a", "c"}), frozenset({"b", "d"})}

    def test_result_includes_slowdown(self, env):
        bound, registry, loop_map, structs = env
        profiler = FrequencyAffinityProfiler(registry, loop_map, structs)
        plain = run_with(bound, profiler)
        result = profiler.result(plain)
        assert result.slowdown > 1.0


class TestAslopProfiler:
    def test_only_misses_are_weighted(self, env):
        bound, registry, loop_map, structs = env
        aslop = AslopProfiler(registry, loop_map, structs)
        frequency = FrequencyAffinityProfiler(registry, loop_map, structs)
        run_with(bound, aslop, frequency)
        weight = sum(e.latency for e in aslop.tables["Arr"].values())
        count = sum(e.latency for e in frequency.tables["Arr"].values())
        assert 0 < weight < count

    def test_slowdown_is_papers_4x(self, env):
        bound, registry, loop_map, structs = env
        aslop = AslopProfiler(registry, loop_map, structs)
        plain = run_with(bound, aslop)
        # 4.2x on a 3-cycles-per-access profile; here just sanity-band.
        assert 1.5 < aslop.result(plain).slowdown < 15


class TestReuseDistanceProfiler:
    def test_linked_fields_have_high_affinity(self, env):
        bound, registry, loop_map, structs = env
        profiler = ReuseDistanceProfiler(registry, loop_map, structs, window=8)
        run_with(bound, profiler)
        matrix = profiler.affinity_matrix("Arr")
        assert matrix.affinity(0, 8) > 0.9      # a-c co-accessed
        assert matrix.affinity(0, 4) < 0.2      # a-b in different loops

    def test_advice_matches_figure1(self, env):
        bound, registry, loop_map, structs = env
        profiler = ReuseDistanceProfiler(registry, loop_map, structs, window=8)
        run_with(bound, profiler)
        plan = profiler.advise()["Arr"]
        groups = {frozenset(g) for g in plan.groups}
        assert frozenset({"a", "c"}) in groups

    def test_slowdown_is_two_orders_of_magnitude(self, env):
        bound, registry, loop_map, structs = env
        profiler = ReuseDistanceProfiler(registry, loop_map, structs)
        plain = run_with(bound, profiler)
        assert profiler.result(plain).slowdown > 50

    def test_window_validation(self, env):
        _, registry, loop_map, structs = env
        with pytest.raises(ValueError):
            ReuseDistanceProfiler(registry, loop_map, structs, window=0)


class TestBurstySampling:
    def test_observes_only_burst_windows(self, env):
        bound, registry, loop_map, structs = env
        inner = FrequencyAffinityProfiler(registry, loop_map, structs)
        bursty = BurstySamplingProfiler(inner, burst=100, gap=900)
        run_with(bound, bursty)
        total = bursty.observed + bursty.skipped
        assert bursty.observed == pytest.approx(total * 0.1, rel=0.1)

    def test_burst_advice_still_finds_the_split(self, env):
        bound, registry, loop_map, structs = env
        inner = FrequencyAffinityProfiler(registry, loop_map, structs)
        bursty = BurstySamplingProfiler(inner, burst=256, gap=1024)
        run_with(bound, bursty)
        plan = bursty.advise().get("Arr")
        assert plan is not None and not plan.is_identity()

    def test_slowdown_in_papers_band(self, env):
        bound, registry, loop_map, structs = env
        inner = FrequencyAffinityProfiler(registry, loop_map, structs)
        bursty = BurstySamplingProfiler(inner)
        plain = run_with(bound, bursty)
        assert 1.5 < bursty.result(plain).slowdown < 10

    def test_parameter_validation(self, env):
        _, registry, loop_map, structs = env
        inner = FrequencyAffinityProfiler(registry, loop_map, structs)
        with pytest.raises(ValueError):
            BurstySamplingProfiler(inner, burst=0)
