"""Unit tests for the optional TLB model."""

import pytest

from repro.memsim import DataTLB, HierarchyConfig, MemoryHierarchy, TLBConfig
from repro.memsim.tlb import _TLBLevel


class TestTLBLevel:
    def test_hit_after_fill(self):
        level = _TLBLevel(entries=8, ways=4)
        assert level.access(5) is False
        assert level.access(5) is True

    def test_lru_within_set(self):
        level = _TLBLevel(entries=2, ways=2)  # one set
        level.access(0)
        level.access(1)
        level.access(2)  # evicts 0
        assert level.access(1) is True
        assert level.access(0) is False

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            _TLBLevel(entries=10, ways=4)
        with pytest.raises(ValueError):
            _TLBLevel(entries=12, ways=4)  # 3 sets


class TestDataTLB:
    def test_same_page_translates_free_after_first(self):
        tlb = DataTLB()
        assert tlb.translate(0x1000) == tlb.config.walk_latency
        assert tlb.translate(0x1FF8) == 0.0  # same 4KB page

    def test_l2_catches_l1_victims(self):
        config = TLBConfig(l1_entries=4, l1_ways=4, l2_entries=64, l2_ways=4)
        tlb = DataTLB(config)
        for page in range(8):
            tlb.translate(page * 4096)
        # Pages 0..3 were evicted from the tiny L1 but live in the STLB.
        assert tlb.translate(0) == config.l2_latency

    def test_walk_counter(self):
        tlb = DataTLB()
        for page in range(10):
            tlb.translate(page * 4096)
        assert tlb.walks == 10
        assert tlb.l1_misses == 10

    def test_footprint_pages(self):
        tlb = DataTLB()
        assert tlb.footprint_pages(0, 4096) == 1
        assert tlb.footprint_pages(100, 4096) == 2
        assert tlb.footprint_pages(0, 8 * 4096) == 8


class TestHierarchyIntegration:
    def test_disabled_by_default(self):
        hier = MemoryHierarchy(HierarchyConfig())
        assert "dtlb_misses" not in hier.miss_summary()

    def test_walk_latency_added_to_access(self):
        config = HierarchyConfig(tlb=TLBConfig())
        with_tlb = MemoryHierarchy(config)
        without = MemoryHierarchy(HierarchyConfig())
        a = with_tlb.access(0, 0x5000, 8, False)
        b = without.access(0, 0x5000, 8, False)
        assert a == b + config.tlb.walk_latency

    def test_summary_reports_walks(self):
        hier = MemoryHierarchy(HierarchyConfig(tlb=TLBConfig()))
        for page in range(20):
            hier.access(0, page * 4096, 8, False)
        summary = hier.miss_summary()
        assert summary["page_walks"] == 20

    def test_page_crossing_access_translates_both_pages(self):
        # An 8-byte access at page_size-4 touches two pages: both must
        # be translated (two walks when cold), but the latency penalty
        # is the max of the two — the walks overlap like the two line
        # fetches of a split access.
        tlb_cfg = TLBConfig()
        config = HierarchyConfig(tlb=tlb_cfg)
        with_tlb = MemoryHierarchy(config)
        without = MemoryHierarchy(HierarchyConfig())
        boundary = tlb_cfg.page_size - 4
        a = with_tlb.access(0, boundary, 8, False)
        b = without.access(0, boundary, 8, False)
        assert with_tlb.cores[0].dtlb.walks == 2
        assert a == b + tlb_cfg.walk_latency

    def test_same_page_access_translates_once(self):
        config = HierarchyConfig(tlb=TLBConfig())
        hier = MemoryHierarchy(config)
        hier.access(0, 0x1000, 8, False)
        assert hier.cores[0].dtlb.walks == 1

    def test_splitting_reduces_page_walks(self):
        """The extension's point: a dense hot array spans fewer pages.

        Walk one 8-byte field of a 64-byte struct over 4MB (1024 pages,
        overflowing a 64+512-entry TLB) vs the split 512KB (128 pages,
        fits the STLB after the first pass).
        """
        config = HierarchyConfig(tlb=TLBConfig())

        def walks(stride, elements, passes=3):
            hier = MemoryHierarchy(config)
            for _ in range(passes):
                for i in range(elements):
                    hier.access(0, i * stride, 8, False)
            return hier.miss_summary()["page_walks"]

        aos_walks = walks(stride=64, elements=65536)   # 4MB footprint
        split_walks = walks(stride=8, elements=65536)  # 512KB footprint
        assert split_walks < aos_walks / 4
