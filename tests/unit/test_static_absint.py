"""Unit tests for the abstract index interpretation (repro.static.absint)."""

import pytest

from repro.layout import INT, StructType
from repro.program import (
    Access,
    Call,
    Compute,
    Const,
    Function,
    Indirect,
    Loop,
    Mod,
    WorkloadBuilder,
    affine,
)
from repro.static import (
    ENUM_CAP,
    StaticAnalysis,
    StaticAnalysisError,
    summarize_index,
)
from tests.conftest import FIGURE1_TYPE, build_figure1


def loop(var, start, stop, step=1, body=(), parallel=False):
    return Loop(line=1, var=var, start=start, stop=stop, step=step,
                body=list(body), parallel=parallel)


class TestSummarizeIndex:
    def test_const_is_a_point(self):
        s = summarize_index(Const(7), [loop("i", 0, 100)])
        assert (s.lo, s.hi, s.diff_gcd, s.distinct) == (7, 7, 0, 1)
        assert s.exact

    def test_affine_unit_stride(self):
        s = summarize_index(affine("i"), [loop("i", 0, 100)])
        assert (s.lo, s.hi, s.diff_gcd, s.distinct) == (0, 99, 1, 100)

    def test_affine_scale_and_step_compose(self):
        # i in {0, 3, 6, 9}; index = 4i + 5 in {5, 17, 29, 41}.
        s = summarize_index(affine("i", 4, 5), [loop("i", 0, 12, step=3)])
        assert (s.lo, s.hi, s.diff_gcd, s.distinct) == (5, 41, 12, 4)

    def test_negative_scale_keeps_absolute_gcd(self):
        s = summarize_index(affine("i", -2, 10), [loop("i", 0, 5)])
        assert (s.lo, s.hi, s.diff_gcd, s.distinct) == (2, 10, 2, 5)

    def test_binding_loop_is_the_one_reading_the_var(self):
        # The inner loop j is irrelevant: i binds the expression, and
        # outer replays add no unique indices.
        loops = [loop("i", 0, 8), loop("j", 0, 3)]
        s = summarize_index(affine("i"), loops)
        assert (s.lo, s.hi, s.distinct) == (0, 7, 8)

    def test_loop_invariant_expression(self):
        s = summarize_index(affine("k", 0, 3), [loop("i", 0, 8)])
        assert (s.lo, s.hi, s.diff_gcd, s.distinct) == (3, 3, 0, 1)

    def test_zero_trip_loop_is_empty(self):
        s = summarize_index(affine("i"), [loop("i", 5, 5)])
        assert s.empty

    def test_mod_without_wrap_is_a_shift(self):
        s = summarize_index(Mod(affine("i"), 1000), [loop("i", 0, 10)])
        assert (s.lo, s.hi, s.diff_gcd, s.distinct) == (0, 9, 1, 10)

    def test_mod_wrapping_stagger(self):
        # The staggered-start pattern: (i + 7) mod 10 over 10 iterations
        # visits every residue; differences include 1 and -9, gcd 1.
        s = summarize_index(Mod(affine("i", 1, 7), 10), [loop("i", 0, 10)])
        assert (s.lo, s.hi, s.diff_gcd, s.distinct) == (0, 9, 1, 10)
        assert s.exact

    def test_mod_wrapping_with_common_factor(self):
        # 2i mod 10: values {0,2,4,6,8} each twice; gcd(2, 10) = 2.
        s = summarize_index(Mod(affine("i", 2, 0), 10), [loop("i", 0, 10)])
        assert (s.lo, s.hi, s.diff_gcd, s.distinct) == (0, 8, 2, 5)

    def test_mod_large_step_is_conservative_not_exact(self):
        # Step 12 > modulus 10: wraps can skip, exactness is dropped but
        # the gcd(12, 10) = 2 divisibility claim still holds.
        s = summarize_index(Mod(affine("i", 12, 0), 10), [loop("i", 0, 50)])
        assert s.diff_gcd == 2
        assert not s.exact
        for i in range(50):
            assert ((12 * i) % 10 - s.lo) % s.diff_gcd == 0

    def test_indirect_enumerates_concrete_tables(self):
        table = (4, 0, 8, 2)
        s = summarize_index(Indirect(table, affine("i")), [loop("i", 0, 4)])
        assert (s.lo, s.hi, s.distinct) == (0, 8, 4)
        assert s.diff_gcd == 2
        assert s.exact

    def test_indirect_with_duplicate_targets(self):
        table = (0, 4, 0, 4)
        s = summarize_index(Indirect(table, affine("i")), [loop("i", 0, 4)])
        assert s.distinct == 2
        assert s.diff_gcd == 4

    def test_indirect_table_bounds_checked(self):
        with pytest.raises(StaticAnalysisError) as err:
            summarize_index(Indirect((1, 2), affine("i")), [loop("i", 0, 5)])
        assert err.value.rule == "oob-index"

    def test_indirect_beyond_enum_cap_falls_back_soundly(self):
        table = tuple(range(0, 24, 3))  # all multiples of 3
        s = summarize_index(
            Indirect(table, Mod(affine("i"), len(table))),
            [loop("i", 0, ENUM_CAP + 1)],
        )
        assert not s.exact
        assert s.diff_gcd == 3  # divides every pairwise difference
        assert (s.lo, s.hi) == (0, 21)

    def test_unbound_variable_rejected(self):
        with pytest.raises(StaticAnalysisError) as err:
            summarize_index(affine("q"), [loop("i", 0, 5)])
        assert err.value.rule == "unbound-var"

    def test_bad_modulus_rejected(self):
        with pytest.raises(StaticAnalysisError) as err:
            summarize_index(Mod(affine("i"), 0), [loop("i", 0, 5)])
        assert err.value.rule == "bad-modulus"

    def test_empty_table_rejected(self):
        with pytest.raises(StaticAnalysisError) as err:
            summarize_index(Indirect((), affine("i")), [loop("i", 0, 5)])
        assert err.value.rule == "empty-table"

    def test_summary_divides_every_concrete_difference(self):
        # The soundness contract, spot-checked against evaluation.
        cases = [
            (affine("i", 6, 1), loop("i", 0, 40, step=2)),
            (Mod(affine("i", 3, 11), 17), loop("i", 0, 60)),
            (Indirect(tuple(x * 5 for x in (9, 1, 4, 7, 0)),
                      Mod(affine("i"), 5)), loop("i", 0, 23)),
        ]
        for expr, l in cases:
            s = summarize_index(expr, [l])
            values = [expr.evaluate({l.var: l.start + k * l.step})
                      for k in range(l.trip_count)]
            assert min(values) == s.lo and max(values) == s.hi or not s.exact
            if s.diff_gcd:
                assert all((v - values[0]) % s.diff_gcd == 0 for v in values)
            else:
                assert len(set(values)) == 1


class TestStaticAnalysisWholeProgram:
    def test_figure1_sizes_offsets_affinity(self):
        report = StaticAnalysis().analyze(build_figure1())
        arr = report.object_by_name("Arr")
        assert arr.derived_size == FIGURE1_TYPE.size == 16
        assert arr.offsets == [0, 4, 8, 12]
        assert arr.size_matches_layout
        # Loop 1 touches a/c (offsets 0, 8), loop 2 touches b/d (4, 12):
        # within-loop pairs have affinity 1, cross-loop pairs 0.
        assert arr.affinity.affinity(0, 8) == pytest.approx(1.0)
        assert arr.affinity.affinity(4, 12) == pytest.approx(1.0)
        assert arr.affinity.affinity(0, 4) == pytest.approx(0.0)

    def test_figure1_streams_are_exact(self):
        report = StaticAnalysis().analyze(build_figure1(n=512))
        assert not report.issues
        for stream in report.streams:
            assert stream.index.exact
            assert stream.executions == 512
            expected = 16 if stream.array == "Arr" else 4
            assert stream.stride == expected

    def test_call_multipliers_scale_executions(self):
        builder = WorkloadBuilder("calls")
        builder.add_aos(StructType("e", [("x", INT)]), 32, name="A")
        helper = Function("helper", [
            Loop(line=10, var="j", start=0, stop=32, body=[
                Access(line=11, array="A", field="x", index=affine("j")),
            ]),
        ])
        main = Function("main", [
            Loop(line=1, var="r", start=0, stop=5, body=[
                Call(line=2, callee="helper"),
            ]),
        ])
        bound = builder.build([main, helper])
        report = StaticAnalysis().analyze(bound)
        (stream,) = report.streams
        assert stream.executions == 5 * 32

    def test_uncalled_function_has_zero_executions(self):
        builder = WorkloadBuilder("deadfn")
        builder.add_aos(StructType("e", [("x", INT)]), 8, name="A")
        dead = Function("dead", [
            Access(line=20, array="A", field="x", index=Const(0)),
        ])
        main = Function("main", [Compute(line=1, cycles=1.0)])
        report = StaticAnalysis().analyze(builder.build([main, dead]))
        (stream,) = report.streams
        assert stream.executions == 0

    def test_oob_access_becomes_issue_not_crash(self):
        builder = WorkloadBuilder("oob")
        builder.add_aos(StructType("e", [("x", INT)]), 8, name="A")
        main = Function("main", [
            Loop(line=1, var="i", start=0, stop=16, body=[
                Access(line=2, array="A", field="x", index=affine("i")),
            ]),
        ])
        report = StaticAnalysis().analyze(builder.build([main]))
        assert [issue.rule for issue in report.issues] == ["oob-index"]
        assert not report.streams

    def test_loop_ids_come_from_the_binary_cfg(self):
        report = StaticAnalysis().analyze(build_figure1())
        labels = {s.loop_label for s in report.streams}
        assert labels == {"4-5", "7-8"}
        for stream in report.streams:
            desc = report.loop_map.loop_of_ip(stream.ip)
            assert desc is not None and desc.id == stream.loop_id

    def test_stream_lookup_by_ip(self):
        report = StaticAnalysis().analyze(build_figure1())
        for stream in report.streams:
            assert report.stream_at(stream.ip) is stream
        assert report.stream_at(0xDEAD) is None

    def test_render_mentions_sizes_and_match(self):
        text = StaticAnalysis().analyze(build_figure1()).render()
        assert "element size: 16" in text
        assert "match" in text


class TestLoopMapQueries:
    def test_ancestors_chain_outermost_first(self):
        bound = build_figure1()
        from repro.binary import LoopMap

        lm = LoopMap(bound.program)
        for desc in lm.loops:
            chain = lm.ancestors(desc.id)
            assert chain[-1] == desc
            assert [d.depth for d in chain] == sorted(d.depth for d in chain)

    def test_innermost_at_line(self):
        bound = build_figure1()
        from repro.binary import LoopMap

        lm = LoopMap(bound.program)
        desc = lm.innermost_at_line("main", 5)
        assert desc is not None and desc.line_range == (4, 5)
        assert lm.innermost_at_line("main", 999) is None
