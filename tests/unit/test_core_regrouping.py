"""Unit tests for the array-regrouping extension (§7 future work)."""

import pytest

from repro.core import (
    array_affinities,
    collect_array_usage,
    recommend_regrouping,
)
from repro.profiler import ThreadProfile


def make_profile(spec):
    """spec: {array_name: {loop_id: (latency, stride_base_addrs)}}.

    Builds one stream per (array, loop) with the given latency and a
    stride-8 address walk so every array has a recovered stride of 8.
    """
    profile = ThreadProfile(thread=0)
    ip = 1
    for array, loops in spec.items():
        identity = ("heap", array)
        total = 0.0
        for loop_id, latency in loops.items():
            stream = profile.stream(ip, 0, identity)
            ip += 1
            stream.loop_id = loop_id
            stream.update(0, latency / 2)
            stream.update(8, latency / 2)
            total += latency
        profile.add_data_latency(identity, total)
        profile.total_latency += total
    return profile


class TestArrayUsage:
    def test_collects_loops_and_strides(self):
        profile = make_profile({"ax": {0: 10.0}, "ay": {0: 10.0}})
        usages = collect_array_usage(profile)
        assert {u.name for u in usages} == {"ax", "ay"}
        for usage in usages:
            assert usage.element_stride == 8
            assert usage.loops == {0: 10.0}

    def test_min_share_filters(self):
        profile = make_profile({"big": {0: 100.0}, "tiny": {1: 0.5}})
        usages = collect_array_usage(profile, min_share=0.05)
        assert [u.name for u in usages] == [("big")]

    def test_empty_profile(self):
        assert collect_array_usage(ThreadProfile(thread=0)) == []


class TestArrayAffinity:
    def test_co_accessed_arrays_have_affinity_one(self):
        profile = make_profile({"ax": {0: 10.0}, "ay": {0: 12.0}})
        (link,) = array_affinities(collect_array_usage(profile))
        assert link.affinity == pytest.approx(1.0)
        assert link.common_loops == (0,)

    def test_disjoint_arrays_have_affinity_zero(self):
        profile = make_profile({"ax": {0: 10.0}, "mass": {1: 10.0}})
        (link,) = array_affinities(collect_array_usage(profile))
        assert link.affinity == 0.0

    def test_partial_overlap_weighted_by_latency(self):
        # ax and mass share loop 0 only for a small fraction of mass's
        # latency: affinity = (10 + 2) / (10 + 20).
        profile = make_profile({"ax": {0: 10.0}, "mass": {0: 2.0, 1: 18.0}})
        (link,) = array_affinities(collect_array_usage(profile))
        assert link.affinity == pytest.approx(0.4)


class TestRecommendation:
    def test_recommends_the_coaccessed_group_only(self):
        profile = make_profile({
            "ax": {0: 10.0}, "ay": {0: 10.0}, "az": {0: 10.0},
            "mass": {1: 5.0},
        })
        (advice,) = recommend_regrouping(profile)
        assert advice.names == ("ax", "ay", "az")
        assert advice.affinity == pytest.approx(1.0)
        assert "mass" not in advice.names

    def test_no_recommendation_for_disjoint_arrays(self):
        profile = make_profile({"a": {0: 1.0}, "b": {1: 1.0}})
        assert recommend_regrouping(profile) == []

    def test_incompatible_strides_not_grouped(self):
        profile = make_profile({"ax": {0: 10.0}, "ay": {0: 10.0}})
        # Rewrite ay's stream to a 16-byte stride.
        identity = ("heap", "ay")
        for stream in profile.streams.values():
            if stream.data_identity == identity:
                stream.stride = 16
        assert recommend_regrouping(profile) == []

    def test_describe_mentions_members(self):
        profile = make_profile({"a": {0: 1.0}, "b": {0: 1.0}})
        (advice,) = recommend_regrouping(profile)
        assert "regroup [a, b]" in advice.describe()


class TestRegroupingWorkload:
    def test_end_to_end_advice_and_speedup(self):
        from repro.core import OfflineAnalyzer
        from repro.memsim import speedup
        from repro.profiler import Monitor
        from repro.workloads import RegroupingWorkload

        workload = RegroupingWorkload(scale=0.5)
        monitor = Monitor(sampling_period=workload.recommended_period)
        run = monitor.run(workload.build_original())
        (advice,) = recommend_regrouping(run.merged)
        assert set(advice.names) == {"ax", "ay", "az"}

        regrouped = monitor.run_unmonitored(
            workload.build_regrouped(advice.names)
        )
        assert speedup(run.metrics, regrouped) > 1.1

    def test_structure_splitting_sees_no_candidate_here(self):
        # The dual check: a pure-SoA program offers nothing to split.
        from repro.core import OfflineAnalyzer, derive_plans
        from repro.profiler import Monitor
        from repro.workloads import RegroupingWorkload

        workload = RegroupingWorkload(scale=0.25)
        monitor = Monitor(sampling_period=workload.recommended_period)
        run = monitor.run(workload.build_original())
        report = OfflineAnalyzer().analyze(run)
        assert derive_plans(report, {}) == {}
