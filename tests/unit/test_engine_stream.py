"""Unit tests for the chunk-granular software pipeline."""

import threading
import time

import pytest

from repro.engine import PipelineStats, pipelined, resolve_mode
from repro.telemetry import events


class TestResolveMode:
    def test_on_and_off(self):
        assert resolve_mode("on") is True
        assert resolve_mode("off") is False

    def test_auto_follows_cpu_count(self):
        from repro._compat import effective_cpu_count

        assert resolve_mode("auto") == (effective_cpu_count() > 1)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            resolve_mode("sideways")


class TestOrderAndStats:
    def test_preserves_order_exactly(self):
        items = list(range(500))
        assert list(pipelined(iter(items))) == items

    def test_counts_and_mode(self):
        stats = PipelineStats()
        out = list(pipelined(iter(range(100)), stats=stats))
        assert out == list(range(100))
        assert stats.mode == "thread"
        assert stats.produced == 100
        assert stats.consumed == 100
        assert stats.producer_busy_s >= 0.0
        assert stats.producer_stall_s >= 0.0
        assert stats.consumer_stall_s >= 0.0

    def test_queue_depth_respects_bound(self):
        stats = PipelineStats()
        list(pipelined(iter(range(200)), depth=2, stats=stats))
        assert 0 <= stats.max_depth <= 2

    def test_empty_stream(self):
        stats = PipelineStats()
        assert list(pipelined(iter(()), stats=stats)) == []
        assert stats.produced == 0 and stats.consumed == 0

    def test_overlap_estimate_is_clamped(self):
        stats = PipelineStats()
        stats.producer_busy_s = 2.0
        stats.consumer_stall_s = 0.5
        assert stats.overlap_seconds(1.0) == 0.5
        assert stats.overlap_seconds(10.0) == 2.0
        assert stats.overlap_seconds(0.0) == 0.0

    def test_to_dict_round_trips_every_slot(self):
        stats = PipelineStats()
        list(pipelined(iter(range(10)), stats=stats))
        d = stats.to_dict()
        assert d["mode"] == "thread"
        assert d["produced"] == d["consumed"] == 10
        assert set(d) == {
            "mode", "produced", "consumed", "producer_busy_s",
            "producer_stall_s", "consumer_stall_s", "max_depth",
            "replayed", "interpret_skipped",
        }


class TestExceptions:
    def test_upstream_error_reraises_at_stream_position(self):
        def upstream():
            yield 1
            yield 2
            raise ValueError("boom at three")

        got = []
        with pytest.raises(ValueError, match="boom at three"):
            for item in pipelined(upstream()):
                got.append(item)
        assert got == [1, 2]

    def test_consumer_side_error_cancels_producer(self):
        produced = []

        def upstream():
            for i in range(10_000):
                produced.append(i)
                yield i

        gen = pipelined(upstream(), depth=2)
        with pytest.raises(RuntimeError):
            for item in gen:
                raise RuntimeError("consumer dies")
        # The producer was cancelled: it cannot have drained the whole
        # upstream through a depth-2 queue after one consumed item.
        time.sleep(0.2)
        assert len(produced) < 10_000


class TestEarlyClose:
    def test_close_joins_producer_thread(self):
        before = threading.active_count()
        gen = pipelined(iter(range(1_000_000)), depth=2)
        assert next(gen) == 0
        gen.close()
        deadline = time.monotonic() + 5.0
        while threading.active_count() > before:
            assert time.monotonic() < deadline, "producer thread leaked"
            time.sleep(0.01)


class TestBusEvents:
    def test_stall_events_published_on_live_bus(self):
        bus = events.EventBus()
        seen = []
        bus.subscribe(seen.append)
        previous = events.install(bus)
        try:
            list(pipelined(iter(range(100))))
        finally:
            events.install(previous)
        kinds = {e.type for e in seen}
        assert "stall" in kinds
        stages = {e.data["stage"] for e in seen if e.type == "stall"}
        assert stages == {"interpret", "simulate"}

    def test_queue_depth_sampled_on_long_streams(self):
        bus = events.EventBus()
        seen = []
        bus.subscribe(seen.append)
        previous = events.install(bus)
        try:
            list(pipelined(iter(range(200))))
        finally:
            events.install(previous)
        depths = [e for e in seen if e.type == "queue-depth"]
        assert depths
        assert all(
            0 <= e.data["depth"] <= e.data["capacity"] for e in depths
        )
