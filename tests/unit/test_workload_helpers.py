"""Unit tests for the workload loop-pattern helpers (common.py)."""

import pytest

from repro.layout import DOUBLE, INT, StructType
from repro.program import (
    Compute,
    Loop,
    WorkloadBuilder,
    Function,
    memory_accesses,
    run,
)
from repro.workloads import LoopSpec
from repro.workloads.common import chase_pass, field_sweep, scalar_sweep

PAIR = StructType("pair", [("a", DOUBLE), ("b", DOUBLE)])


def build_with(loop, *, count=64):
    builder = WorkloadBuilder("t")
    builder.add_aos(PAIR, count, name="P")
    builder.add_scalar("S", DOUBLE, count * 8)
    return builder.build([Function("main", [loop])]), builder


class TestFieldSweep:
    def test_repetitions_multiply_accesses(self):
        spec = LoopSpec(lines=(10, 12), fields=("a",), repetitions=3)
        bound, _ = build_with(field_sweep(spec, "P", 64))
        assert len(list(memory_accesses(run(bound)))) == 3 * 64

    def test_stagger_separates_field_phases(self):
        spec = LoopSpec(lines=(10, 12), fields=("a", "b"), repetitions=1)
        bound, builder = build_with(field_sweep(spec, "P", 64, stagger=True))
        aos = builder.bindings.resolve("P", "a")[0]
        events = list(memory_accesses(run(bound)))
        first_a, first_b = events[0], events[1]
        idx_a = (first_a.address - aos.base) // aos.stride
        idx_b = (first_b.address - aos.base) // aos.stride
        assert idx_b - idx_a == 32  # half the array apart

    def test_unstaggered_accesses_same_element(self):
        spec = LoopSpec(lines=(10, 12), fields=("a", "b"), repetitions=1)
        bound, builder = build_with(field_sweep(spec, "P", 64, stagger=False))
        events = list(memory_accesses(run(bound)))
        assert events[1].address - events[0].address == 8  # same element

    def test_compute_burst_emitted_per_repetition(self):
        spec = LoopSpec(lines=(10, 12), fields=("a",), repetitions=2,
                        compute_cycles=3.0)
        bound, _ = build_with(field_sweep(spec, "P", 64))
        from repro.program import trace_stats

        _, compute = trace_stats(bound)
        assert compute == 2 * 3.0 * 64

    def test_writes_marked(self):
        spec = LoopSpec(lines=(10, 12), fields=("a", "b"), repetitions=1)
        bound, _ = build_with(field_sweep(spec, "P", 64, writes=("b",)))
        writes = {e.is_write for e in memory_accesses(run(bound))}
        assert writes == {True, False}

    def test_parallel_flag_propagates(self):
        spec = LoopSpec(lines=(10, 12), fields=("a",), repetitions=1)
        loop = field_sweep(spec, "P", 64, parallel=True)
        inner = next(s for s in loop.body if isinstance(s, Loop))
        assert inner.parallel


class TestChasePass:
    def test_visits_follow_the_order_table(self):
        order = (5, 2, 7, 0)
        spec = LoopSpec(lines=(96, 96), fields=("a",), repetitions=1)
        bound, builder = build_with(chase_pass(spec, "P", order))
        aos = builder.bindings.resolve("P", "a")[0]
        indices = [
            (e.address - aos.base) // aos.stride
            for e in memory_accesses(run(bound))
        ]
        assert indices == list(order)

    def test_all_fields_read_from_same_node(self):
        order = tuple(range(16))
        spec = LoopSpec(lines=(96, 97), fields=("a", "b"), repetitions=1)
        bound, _ = build_with(chase_pass(spec, "P", order))
        events = list(memory_accesses(run(bound)))
        for a, b in zip(events[::2], events[1::2]):
            assert b.address - a.address == 8  # b of the same element


class TestScalarSweep:
    def test_stride_in_elements(self):
        loop = scalar_sweep(100, "S", 32, 1, stride=8)
        bound, builder = build_with(loop)
        aos = builder.bindings.resolve("S", None)[0]
        addrs = [e.address for e in memory_accesses(run(bound))]
        assert addrs[1] - addrs[0] == 8 * 8  # 8 doubles apart

    def test_write_sweep(self):
        loop = scalar_sweep(100, "S", 16, 1, is_write=True)
        bound, _ = build_with(loop)
        assert all(e.is_write for e in memory_accesses(run(bound)))


class TestAdviceToC:
    def test_figure9_shape_for_tsp(self):
        """The C rendering splits tree into the hot trio + cold rest."""
        from repro.core import OfflineAnalyzer
        from repro.profiler import Monitor
        from repro.workloads import TREE, TspWorkload

        workload = TspWorkload(scale=0.25)
        run_ = Monitor(sampling_period=173).run(workload.build_original())
        report = OfflineAnalyzer().analyze(run_)
        advice = report.object_by_name("tree_nodes").advice
        c_code = advice.to_c(TREE)
        assert "struct tree_xyn {" in c_code
        assert "double x;" in c_code and "int next;" in c_code
        assert "struct tree_slrp {" in c_code
        assert c_code.count("struct ") == 2
