"""Unit tests for SplitPlan and the splitting transform."""

import pytest

from repro.layout import (
    DOUBLE,
    INT,
    SplitPlan,
    StructType,
    apply_split,
    identity_plan,
    maximal_plan,
)
from repro.workloads import F1_NEURON, TREE


class TestSplitPlan:
    def test_groups_and_lookup(self):
        plan = SplitPlan("tree", (("x", "y", "next"), ("sz", "left", "right", "prev")))
        assert plan.group_of("x") == 0
        assert plan.group_of("prev") == 1
        assert plan.field_names == ("x", "y", "next", "sz", "left", "right", "prev")

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError, match="appears in groups"):
            SplitPlan("t", (("a", "b"), ("b",)))

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SplitPlan("t", (("a",), ()))

    def test_unknown_field_lookup_raises(self):
        plan = SplitPlan("t", (("a",),))
        with pytest.raises(KeyError):
            plan.group_of("z")

    def test_identity_detection(self):
        assert identity_plan(TREE).is_identity()
        assert not maximal_plan(TREE).is_identity()

    def test_describe_mentions_groups(self):
        plan = SplitPlan("t", (("a", "c"), ("b",)))
        text = plan.describe()
        assert "{a, c}" in text and "{b}" in text


class TestApplySplit:
    def test_figure9_tsp_split(self):
        plan = SplitPlan(
            TREE.name, (("x", "y", "next"), ("sz", "left", "right", "prev"))
        )
        layout = apply_split(TREE, plan, names=["tree_0", "tree_1"])
        hot, cold = layout.structs
        assert hot.name == "tree_0"
        assert hot.field_names == ("x", "y", "next")
        assert hot.size == 24
        assert cold.field_names == ("sz", "left", "right", "prev")
        assert cold.size == 16

    def test_field_map_routes_every_field(self):
        layout = apply_split(TREE, maximal_plan(TREE))
        assert set(layout.field_map) == set(TREE.field_names)
        for name in TREE.field_names:
            assert layout.struct_for(name).field_names == (name,)

    def test_non_partition_rejected(self):
        with pytest.raises(ValueError, match="not a partition"):
            apply_split(TREE, SplitPlan(TREE.name, (("x", "y"),)))

    def test_wrong_struct_name_rejected(self):
        with pytest.raises(ValueError, match="targets"):
            apply_split(TREE, SplitPlan("other", (TREE.field_names,)))

    def test_names_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="names"):
            apply_split(TREE, maximal_plan(TREE), names=["just_one"])

    def test_identity_split_reproduces_struct(self):
        layout = apply_split(TREE, identity_plan(TREE))
        assert len(layout.structs) == 1
        assert layout.structs[0].field_names == TREE.field_names
        assert layout.structs[0].size == TREE.size

    def test_split_can_shrink_total_bytes_by_removing_padding(self):
        # char+double struct has 7 bytes padding; splitting removes it.
        from repro.layout import CHAR

        st = StructType("t", [("c", CHAR), ("d", DOUBLE)])
        layout = apply_split(st, maximal_plan(st))
        assert st.size == 16
        assert layout.total_element_bytes() == 9

    def test_figure7_art_split_groups(self):
        plan = SplitPlan(
            F1_NEURON.name,
            (("P",), ("X", "Q"), ("I", "U"), ("V",), ("W",), ("R",)),
        )
        layout = apply_split(F1_NEURON, plan)
        sizes = [st.size for st in layout.structs]
        assert sizes == [8, 16, 16, 8, 8, 8]

    def test_c_declarations_render_all_structs(self):
        layout = apply_split(TREE, maximal_plan(TREE))
        decls = layout.c_declarations()
        assert decls.count("struct ") == len(TREE.field_names)
