"""Unit tests for ``repro.telemetry``: spans, metrics, exporters."""

import itertools
import json
import math
from pathlib import Path

import pytest

from repro import telemetry
from repro.telemetry import (
    LATENCY_BUCKETS_CYCLES,
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    SelfOverheadAccount,
    Tracer,
    chrome_trace,
    jsonl,
    prometheus_text,
    to_jsonable,
)

GOLDEN = Path(__file__).parent.parent / "data" / "golden_trace.json"


def fake_clock():
    """A deterministic clock: 0.0, 1.0, 2.0, ... per call."""
    counter = itertools.count()
    return lambda: float(next(counter))


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer(fake_clock())
        with tracer.span("run"):
            with tracer.span("interpret"):
                pass
            with tracer.span("simulate"):
                pass
        (root,) = tracer.roots
        assert root.name == "run"
        assert [c.name for c in root.children] == ["interpret", "simulate"]
        assert root.find("simulate") is root.children[1]

    def test_timing_uses_injected_clock(self):
        tracer = Tracer(fake_clock())
        with tracer.span("outer"):          # start=0
            with tracer.span("inner"):      # start=1, end=2
                pass
        # outer closes at t=3
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.start == 0.0 and outer.end == 3.0
        assert outer.duration == 3.0
        assert inner.duration == 1.0

    def test_attributes_via_kwargs_and_set(self):
        tracer = Tracer(fake_clock())
        with tracer.span("run", workload="art") as span:
            span.set(samples=42)
            tracer.annotate(threads=4)
        assert tracer.roots[0].attributes == {
            "workload": "art", "samples": 42, "threads": 4,
        }

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer(fake_clock())
        assert tracer.current() is None
        with tracer.span("a"):
            with tracer.span("b"):
                assert tracer.current().name == "b"
            assert tracer.current().name == "a"
        assert tracer.current() is None

    def test_exception_inside_span_keeps_nesting_sane(self):
        tracer = Tracer(fake_clock())
        with pytest.raises(RuntimeError):
            with tracer.span("run"):
                with tracer.span("broken"):
                    raise RuntimeError("boom")
        # Both spans closed; a later span is a fresh root, not a child.
        with tracer.span("next"):
            pass
        assert [r.name for r in tracer.roots] == ["run", "next"]
        assert all(s.end is not None for s in tracer.all_spans())

    def test_span_names_depth_first(self):
        tracer = Tracer(fake_clock())
        with tracer.span("run"):
            with tracer.span("simulate"):
                pass
        with tracer.span("analyze"):
            pass
        assert tracer.span_names() == ["run", "simulate", "analyze"]

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", attr=1) as span:
            span.set(more=2)
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span_names() == []
        assert NULL_TRACER.current() is None
        assert span.attributes == {}


class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total")
        counter.inc()
        counter.add(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_sets_and_moves(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_test_depth")
        gauge.set(7)
        gauge.inc(-2)
        assert gauge.value == 5.0

    def test_get_or_create_is_identity_per_labelset(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_test_total", level="L1")
        b = registry.counter("repro_test_total", level="L1")
        c = registry.counter("repro_test_total", level="L2")
        assert a is b and a is not c

    def test_kind_collision_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_test_total")

    def test_naming_convention_enforced(self):
        registry = MetricsRegistry()
        for bad in ("Bad", "1leading", "has-dash", "has space"):
            with pytest.raises(ValueError):
                registry.counter(bad)

    def test_histogram_le_edge_semantics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_test_latency", (4.0, 8.0, 16.0))
        # A value exactly on an edge belongs to that bucket (le).
        for value in (4.0, 4.0, 8.0, 9.0, 100.0):
            histogram.observe(value)
        cumulative = dict(histogram.cumulative())
        assert cumulative[4.0] == 2       # both 4.0 observations
        assert cumulative[8.0] == 3       # + the 8.0 (not the 9.0)
        assert cumulative[16.0] == 4      # + the 9.0
        assert cumulative[math.inf] == 5  # everything
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(125.0)

    def test_histogram_edges_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("repro_test_bad", (8.0, 4.0))
        with pytest.raises(ValueError):
            registry.histogram("repro_test_dup", (4.0, 4.0))

    def test_histogram_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("repro_test_latency", (4.0, 8.0))
        with pytest.raises(ValueError, match="different buckets"):
            registry.histogram("repro_test_latency", (4.0, 16.0))

    def test_snapshot_flattens_by_label_suffix(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", level="L1").add(3)
        snapshot = registry.snapshot()
        assert snapshot['repro_test_total{level="L1"}'] == 3

    def test_null_registry_swallows_everything(self):
        NULL_REGISTRY.counter("repro_x_total").inc()
        NULL_REGISTRY.gauge("repro_x_depth").set(9)
        NULL_REGISTRY.histogram("repro_x_latency", LATENCY_BUCKETS_CYCLES
                                ).observe(3)
        assert NULL_REGISTRY.enabled is False
        assert NULL_REGISTRY.instruments() == []
        assert NULL_REGISTRY.snapshot() == {}


def make_account(**overrides):
    values = dict(
        workload="figure1",
        variant="original",
        pmu="PEBS-LL",
        sampling_period=503,
        deployment_period=10_000,
        priced_samples=12.0,
        num_threads=4,
        plain_cycles=1_000_000.0,
        interrupt_service_cycles=12_000.0,
        online_analysis_cycles=5_000.0,
        collection_cycles=3_000.0,
    )
    values.update(overrides)
    return SelfOverheadAccount(**values)


class TestSelfOverheadAccount:
    def test_components_sum_to_overhead_percent(self):
        account = make_account()
        assert account.extra_cycles == 20_000.0
        assert account.overhead_percent == pytest.approx(2.0)
        assert sum(account.components_percent().values()) == pytest.approx(
            account.overhead_percent
        )
        assert account.monitored_cycles == 1_020_000.0

    def test_zero_plain_cycles_reports_zero(self):
        account = make_account(plain_cycles=0.0)
        assert account.overhead_percent == 0.0

    def test_render_names_every_component(self):
        text = make_account().render()
        for label in ("interrupt-service", "online-analysis", "collection",
                      "overhead (sum)", "PEBS-LL", "deployment period 10000"):
            assert label in text

    def test_export_metrics_publishes_gauges(self):
        registry = MetricsRegistry()
        make_account().export_metrics(registry)
        total = registry.get("repro_overhead_total_percent",
                             workload="figure1")
        assert total.value == pytest.approx(2.0)
        component = registry.get("repro_overhead_component_percent",
                                 workload="figure1",
                                 component="interrupt_service")
        assert component.value == pytest.approx(1.2)


class TestSession:
    def test_disabled_by_default(self):
        assert telemetry.enabled() is False
        assert telemetry.tracer() is NULL_TRACER
        assert telemetry.metrics_registry() is NULL_REGISTRY

    def test_session_scopes_the_globals(self):
        with telemetry.session(fake_clock()) as session:
            assert telemetry.enabled()
            assert telemetry.tracer() is session.tracer
            assert telemetry.metrics_registry() is session.metrics
        assert telemetry.enabled() is False

    def test_record_overhead_files_and_exports(self):
        with telemetry.session(fake_clock()) as session:
            telemetry.record_overhead(make_account())
            assert len(session.overhead_accounts) == 1
            assert session.metrics.get(
                "repro_overhead_total_percent", workload="figure1"
            ) is not None

    def test_record_overhead_without_session_is_noop(self):
        telemetry.record_overhead(make_account())  # must not raise
        assert telemetry.enabled() is False


class TestToJsonable:
    def test_handles_tuples_sets_and_tuple_keys(self):
        value = {("main", "Arr"): {3, 1, 2}, "pair": (1, 2)}
        assert to_jsonable(value) == {"main/Arr": [1, 2, 3], "pair": [1, 2]}

    def test_non_finite_floats_become_strings(self):
        assert to_jsonable(math.inf) == "inf"
        assert to_jsonable(float("nan")) == "nan"
        assert to_jsonable(1.5) == 1.5

    def test_dataclasses_become_dicts(self):
        encoded = to_jsonable(make_account())
        assert encoded["workload"] == "figure1"
        assert encoded["pmu"] == "PEBS-LL"

    def test_array_columns_round_trip(self):
        from array import array

        column = array("q", [0x1000, 0x1008, -1])
        encoded = to_jsonable({"addresses": column})
        assert encoded == {"addresses": [0x1000, 0x1008, -1]}
        # Round-trips through the JSON layer, not a repr string.
        assert json.loads(json.dumps(encoded)) == encoded
        assert array("q", encoded["addresses"]) == column

    def test_paths_become_strings(self):
        encoded = to_jsonable({"out": Path("telemetry") / "flightrec.json"})
        assert encoded == {"out": "telemetry/flightrec.json"}
        assert json.loads(json.dumps(encoded)) == encoded


class TestExporters:
    def build_session(self):
        session = telemetry.start(fake_clock())
        tracer = session.tracer
        with tracer.span("run", workload="figure1"):
            with tracer.span("simulate") as span:
                span.set(accesses=1024)
        session.metrics.counter(
            "repro_memsim_cache_misses_total", help="cache misses by level",
            level="L1",
        ).add(7)
        session.metrics.histogram(
            "repro_sampling_latency_cycles", (4.0, 8.0),
            help="sample latency",
        ).observe(5.0)
        telemetry.record_overhead(make_account())
        telemetry.stop()
        return session

    def test_chrome_trace_shape(self):
        session = self.build_session()
        doc = chrome_trace(session.tracer)
        assert doc["displayTimeUnit"] == "ms"
        kinds = [e["ph"] for e in doc["traceEvents"]]
        assert kinds == ["M", "X", "X"]
        run, simulate = doc["traceEvents"][1:]
        assert run["name"] == "run" and run["ts"] == 0.0
        assert simulate["ts"] == 1e6 and simulate["dur"] == 1e6
        assert simulate["args"] == {"accesses": 1024}
        # Perfetto-loadable means plain-JSON round-trippable.
        json.loads(json.dumps(doc))

    def test_chrome_trace_matches_golden_file(self):
        clock = fake_clock()
        tracer = Tracer(clock)
        with tracer.span("run", workload="figure1", threads=1):
            with tracer.span("interpret") as span:
                span.set(loops=2)
            with tracer.span("simulate") as span:
                span.set(accesses=1024)
        with tracer.span("analyze", workload="figure1"):
            with tracer.span("cluster", object="Arr"):
                pass
            with tracer.span("advise", object="Arr") as span:
                span.set(clusters=2)
        rendered = json.dumps(chrome_trace(tracer), indent=2, sort_keys=True)
        assert rendered + "\n" == GOLDEN.read_text()

    def test_jsonl_every_line_parses(self):
        session = self.build_session()
        lines = jsonl(session).splitlines()
        events = [json.loads(line) for line in lines]
        types = {event["type"] for event in events}
        assert types == {"span", "metric", "overhead_account"}
        spans = [e for e in events if e["type"] == "span"]
        child = next(e for e in spans if e["name"] == "simulate")
        parent = next(e for e in spans if e["name"] == "run")
        assert child["parent"] == parent["id"]
        histogram = next(e for e in events
                         if e.get("name") == "repro_sampling_latency_cycles")
        assert histogram["count"] == 1
        assert histogram["buckets"][-1]["le"] == "inf"

    def test_prometheus_text_format(self):
        session = self.build_session()
        text = prometheus_text(session.metrics)
        assert "# TYPE repro_memsim_cache_misses_total counter" in text
        assert '# HELP repro_memsim_cache_misses_total cache misses' in text
        assert 'repro_memsim_cache_misses_total{level="L1"} 7' in text
        assert "# TYPE repro_sampling_latency_cycles histogram" in text
        assert 'repro_sampling_latency_cycles_bucket{le="8"} 1' in text
        assert 'repro_sampling_latency_cycles_bucket{le="+Inf"} 1' in text
        assert "repro_sampling_latency_cycles_sum 5" in text
        assert "repro_sampling_latency_cycles_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_header_emitted_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", level="L1").add(1)
        registry.counter("repro_test_total", level="L2").add(2)
        text = prometheus_text(registry)
        assert text.count("# TYPE repro_test_total counter") == 1

    def test_write_telemetry_emits_all_files(self, tmp_path):
        session = self.build_session()
        paths = telemetry.write_telemetry(session, tmp_path)
        names = {path.name for path in paths}
        assert names == {"trace.json", "telemetry.jsonl", "metrics.prom",
                         "overhead.json"}
        for path in paths:
            assert path.exists()
        accounts = json.loads((tmp_path / "overhead.json").read_text())
        assert accounts[0]["workload"] == "figure1"
