"""Unit tests for repro.layout.types (x86-64 ABI primitives)."""

import pytest

from repro.layout import (
    CHAR,
    COMPLEX_FLOAT,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    MAX_UNSIGNED,
    POINTER,
    SHORT,
    PrimitiveType,
    align_up,
    array_of,
    primitive,
)


class TestPrimitiveSizes:
    def test_char_is_one_byte(self):
        assert CHAR.size == 1
        assert CHAR.align == 1

    def test_int_is_four_bytes(self):
        assert INT.size == 4
        assert INT.align == 4

    def test_long_and_pointer_are_eight_bytes(self):
        assert LONG.size == 8
        assert POINTER.size == 8
        assert POINTER.align == 8

    def test_double_is_eight_bytes(self):
        assert DOUBLE.size == 8
        assert DOUBLE.align == 8

    def test_libquantum_complex_float_is_two_floats(self):
        # float _Complex: 8 bytes but only float (4-byte) alignment.
        assert COMPLEX_FLOAT.size == 8
        assert COMPLEX_FLOAT.align == 4

    def test_max_unsigned_is_unsigned_long_long(self):
        assert MAX_UNSIGNED.size == 8


class TestPrimitiveValidation:
    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            PrimitiveType("bad", 0, 1)

    def test_rejects_non_power_of_two_alignment(self):
        with pytest.raises(ValueError):
            PrimitiveType("bad", 4, 3)

    def test_rejects_negative_alignment(self):
        with pytest.raises(ValueError):
            PrimitiveType("bad", 4, -4)

    def test_str_is_c_spelling(self):
        assert str(INT) == "int"
        assert str(POINTER) == "void*"


class TestLookup:
    def test_primitive_by_name(self):
        assert primitive("double") is DOUBLE
        assert primitive("short") is SHORT

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(KeyError, match="unknown primitive"):
            primitive("quaternion")


class TestArrayOf:
    def test_char_array_size(self):
        entry = array_of(CHAR, 48)
        assert entry.size == 48
        assert entry.align == 1
        assert entry.name == "char[48]"

    def test_element_alignment_is_inherited(self):
        arr = array_of(FLOAT, 3)
        assert arr.size == 12
        assert arr.align == 4

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            array_of(CHAR, 0)


class TestAlignUp:
    @pytest.mark.parametrize(
        "value,alignment,expected",
        [(0, 8, 0), (1, 8, 8), (8, 8, 8), (9, 8, 16), (13, 4, 16), (63, 64, 64)],
    )
    def test_rounds_to_next_multiple(self, value, alignment, expected):
        assert align_up(value, alignment) == expected

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            align_up(5, 12)
