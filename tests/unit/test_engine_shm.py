"""Unit tests for the shared-memory process-mode simulate stage.

The contract under test: :class:`RemoteHierarchy` is byte-identical to
an in-process :class:`MemoryHierarchy`, and *no* exit path — clean
close, interpreter exit, or SIGTERM through ``crash_dump_scope`` —
leaves a segment behind in ``/dev/shm``.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time
from array import array
from pathlib import Path

import pytest

from repro.engine import shm
from repro.memsim.hierarchy import HierarchyConfig, MemoryHierarchy

pytestmark = pytest.mark.skipif(
    not shm.process_mode_available(),
    reason="multiprocessing.shared_memory or fork unavailable",
)


def columns(n=256, stride=48):
    addresses = array("q", [(i * stride) % 4096 for i in range(n)])
    sizes = array("q", [8] * n)
    is_write = array("q", [i % 3 == 0 for i in range(n)])
    thread = array("q", [0] * n)
    return addresses, sizes, is_write, thread


def segment_exists(name):
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


class TestByteIdentity:
    def test_batch_walk_matches_local_hierarchy(self):
        config = HierarchyConfig.small()
        local = MemoryHierarchy(config, 1)
        cols = columns()
        expected = list(local.access_batch(*cols))
        with shm.RemoteHierarchy(config, 1) as remote:
            got = list(remote.access_batch(*columns()))
            assert got == expected
            assert remote.l1_misses() == local.l1_misses()
            assert remote.l2_misses() == local.l2_misses()
            assert remote.l3_misses() == local.l3_misses()
            assert remote.dram_accesses == local.dram_accesses
            assert remote.invalidations == local.invalidations

    def test_scalar_access_matches_local_hierarchy(self):
        config = HierarchyConfig.small()
        local = MemoryHierarchy(config, 1)
        with shm.RemoteHierarchy(config, 1) as remote:
            for address in (0, 64, 0, 4096, 64):
                assert remote.access(0, address, 8, False) == local.access(
                    0, address, 8, False
                )

    def test_segment_grows_to_fit_large_chunks(self):
        config = HierarchyConfig.small()
        local = MemoryHierarchy(config, 1)
        n = (shm.RemoteHierarchy.MIN_BYTES // 40) + 1000
        cols = columns(n=n)
        expected = list(local.access_batch(*cols))
        with shm.RemoteHierarchy(config, 1) as remote:
            got = list(remote.access_batch(*columns(n=n)))
            assert got == expected
            # Growth replaced the segment; exactly one is still live.
            assert len(shm.live_segment_names()) == 1


class TestCleanup:
    def test_close_unlinks_segment_and_registry(self):
        remote = shm.RemoteHierarchy(HierarchyConfig.small(), 1)
        name = remote._segment.name
        assert name in shm.live_segment_names()
        assert segment_exists(name)
        remote.close()
        assert name not in shm.live_segment_names()
        assert not segment_exists(name)
        remote.close()  # idempotent

    def test_cleanup_segments_reclaims_everything(self):
        remote = shm.RemoteHierarchy(HierarchyConfig.small(), 1)
        name = remote._segment.name
        assert shm.cleanup_segments() >= 1
        assert not segment_exists(name)
        assert shm.live_segment_names() == ()
        # The segment is gone under the remote; retire its worker too.
        remote._closed = True
        remote._conn.close()
        remote._proc.join(timeout=5.0)


CHILD = textwrap.dedent(
    """
    import sys, time
    from repro.engine.shm import RemoteHierarchy
    from repro.memsim.hierarchy import HierarchyConfig
    from repro.telemetry.live import FlightRecorder, crash_dump_scope

    with crash_dump_scope(FlightRecorder(), sys.argv[1]):
        remote = RemoteHierarchy(HierarchyConfig.small(), 1)
        print("READY", remote._segment.name, flush=True)
        time.sleep(60)
    """
)


class TestSigtermLeak:
    @pytest.mark.skipif(
        not hasattr(signal, "SIGTERM"), reason="no SIGTERM on this platform"
    )
    def test_killed_run_leaves_no_shm_segments(self, tmp_path):
        """Satellite contract: SIGTERM mid-run reclaims /dev/shm.

        A child process opens a RemoteHierarchy inside crash_dump_scope
        (the path every ``--live``/``--deadline`` run uses), then hangs;
        we SIGTERM it and assert its segment is gone afterward — the
        incident hook, not the child's atexit, must have unlinked it.
        """
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", CHILD, str(tmp_path / "flight.json")],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline().split()
            assert line and line[0] == "READY", "child failed to start"
            name = line[1]
            assert segment_exists(name)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 143
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
            proc.stdout.close()
        # The dump ran (proof the incident path executed) ...
        assert (tmp_path / "flight.json").exists()
        # ... and reclaimed the segment: nothing leaked.
        deadline = time.monotonic() + 5.0
        while segment_exists(name):
            assert time.monotonic() < deadline, f"leaked segment {name}"
            time.sleep(0.05)
        leftovers = [
            p for p in Path("/dev/shm").glob("repro-shm-*")
        ] if Path("/dev/shm").is_dir() else []
        assert not any(str(proc.pid) in p.name for p in leftovers)
