"""Unit tests for the benchmark models and suite rosters."""

import pytest

from repro.layout import apply_split
from repro.program import memory_accesses, run, trace_stats
from repro.workloads import (
    RODINIA_KERNELS,
    SPEC_CPU2006_KERNELS,
    TABLE2_WORKLOADS,
    all_workloads,
    permuted_indices,
    suite_by_name,
)

TINY = 0.02


@pytest.mark.parametrize("name", list(TABLE2_WORKLOADS))
class TestEveryWorkload:
    def test_original_variant_builds_and_runs(self, name):
        workload = TABLE2_WORKLOADS[name](scale=TINY)
        bound = workload.build_original()
        accesses, compute = trace_stats(bound, num_threads=workload.num_threads)
        assert accesses > 0
        assert compute > 0

    def test_paper_split_builds_and_runs(self, name):
        workload = TABLE2_WORKLOADS[name](scale=TINY)
        bound = workload.build_paper_split()
        assert bound.variant == "split"
        accesses, _ = trace_stats(bound, num_threads=workload.num_threads)
        assert accesses > 0

    def test_paper_plans_partition_target_structs(self, name):
        workload = TABLE2_WORKLOADS[name](scale=TINY)
        structs = workload.target_structs()
        for array, plan in workload.paper_plans().items():
            struct = structs[array]
            apply_split(struct, plan)  # raises unless a valid partition

    def test_both_variants_emit_same_access_count(self, name):
        workload = TABLE2_WORKLOADS[name](scale=TINY)
        original, _ = trace_stats(workload.build_original(),
                                  num_threads=workload.num_threads)
        split, _ = trace_stats(workload.build_paper_split(),
                               num_threads=workload.num_threads)
        assert original == split  # the IR is identical; only addresses move


class TestWorkloadProperties:
    def test_parallel_benchmarks_use_four_threads(self):
        threads = {w.name: w.num_threads for w in all_workloads(scale=TINY)}
        assert threads["CLOMP 1.2"] == 4
        assert threads["Health"] == 4
        assert threads["NN"] == 4
        assert threads["179.ART"] == 1

    def test_scaled_respects_minimum(self):
        workload = TABLE2_WORKLOADS["179.ART"](scale=1e-9)
        assert workload.scaled(8192, minimum=64) == 64

    def test_parallel_traces_use_all_threads(self):
        workload = TABLE2_WORKLOADS["NN"](scale=TINY)
        bound = workload.build_original()
        threads = {e.thread for e in memory_accesses(run(bound, num_threads=4))}
        assert threads == {0, 1, 2, 3}


class TestPermutedIndices:
    def test_is_a_permutation(self):
        order = permuted_indices(100, seed=1)
        assert sorted(order) == list(range(100))

    def test_deterministic_by_seed(self):
        assert permuted_indices(50, seed=2) == permuted_indices(50, seed=2)
        assert permuted_indices(50, seed=2) != permuted_indices(50, seed=3)

    def test_windowed_shuffle_stays_local(self):
        order = permuted_indices(64, seed=4, window=8)
        assert sorted(order) == list(range(64))
        for position, index in enumerate(order):
            assert abs(index - position) < 8

    def test_window_validation(self):
        with pytest.raises(ValueError):
            permuted_indices(10, seed=0, window=0)


class TestSuiteRosters:
    def test_rosters_have_paper_scale_breadth(self):
        assert len(RODINIA_KERNELS) >= 15
        assert len(SPEC_CPU2006_KERNELS) >= 15

    def test_rodinia_is_parallel_spec_is_sequential(self):
        assert all(k.threads == 4 for k in RODINIA_KERNELS)
        assert all(k.threads == 1 for k in SPEC_CPU2006_KERNELS)

    def test_kernels_build_and_run(self):
        for spec in (RODINIA_KERNELS[0], SPEC_CPU2006_KERNELS[0]):
            bound = spec.build()
            accesses, _ = trace_stats(bound, num_threads=spec.threads)
            assert accesses == spec.elems * spec.reps

    def test_suite_by_name(self):
        assert suite_by_name("rodinia") is RODINIA_KERNELS
        assert suite_by_name("spec") is SPEC_CPU2006_KERNELS
        with pytest.raises(KeyError):
            suite_by_name("parsec")

    def test_names_are_unique(self):
        names = [k.name for k in RODINIA_KERNELS + SPEC_CPU2006_KERNELS]
        assert len(names) == len(set(names))
