"""Unit tests for stream state (online GCD), registry, and profiles."""

import pytest

from repro.layout import AddressSpace
from repro.profiler import (
    DataObjectRegistry,
    StreamState,
    ThreadProfile,
)


def stream(key=(0x400000, 0, ("heap", "A"))):
    return StreamState(key=key)


class TestStreamStateGCD:
    def test_stride_from_two_unique_addresses(self):
        s = stream()
        s.update(1000, 10.0)
        s.update(1064, 10.0)
        assert s.stride == 64
        assert s.unique_addresses == 2

    def test_gcd_refines_with_more_samples(self):
        s = stream()
        for addr in (0, 192, 320):  # diffs 192, 128 -> gcd 64
            s.update(addr, 1.0)
        assert s.stride == 64

    def test_duplicates_do_not_perturb(self):
        s = stream()
        s.update(0, 1.0)
        s.update(128, 1.0)
        s.update(0, 1.0)  # repeat: no new stride info
        assert s.stride == 128
        assert s.unique_addresses == 2
        assert s.sample_count == 3

    def test_latency_and_writes_accumulate(self):
        s = stream()
        s.update(0, 5.0)
        s.update(64, 7.0, is_write=True)
        assert s.total_latency == 12.0
        assert s.write_samples == 1

    def test_min_address_tracked(self):
        s = stream()
        for addr in (300, 100, 200):
            s.update(addr, 1.0)
        assert s.min_address == 100

    def test_single_sample_has_no_stride(self):
        s = stream()
        s.update(42, 1.0)
        assert not s.has_stride()


class TestStreamMerge:
    def test_merge_takes_gcd_of_strides_and_cross_diff(self):
        a = stream()
        for addr in (0, 128):
            a.update(addr, 1.0)
        b = stream()
        for addr in (64, 256):  # stride 192
            b.update(addr, 2.0)
        merged = a.merged_with(b)
        # gcd(128, 192, |0-64|) = 64
        assert merged.stride == 64
        assert merged.total_latency == 6.0
        assert merged.sample_count == 4
        assert merged.min_address == 0

    def test_merge_requires_same_key(self):
        a = stream(key=(1, 0, ("heap", "A")))
        b = stream(key=(2, 0, ("heap", "A")))
        with pytest.raises(ValueError):
            a.merged_with(b)

    def test_merge_preserves_attribution_metadata(self):
        a = stream()
        a.line, a.loop_id, a.data_base = 10, 3, 0x1000
        b = stream()
        merged = a.merged_with(b)
        assert (merged.line, merged.loop_id, merged.data_base) == (10, 3, 0x1000)


class TestDataObjectRegistry:
    def _space(self):
        space = AddressSpace()
        space.allocate("heap_a", 256, call_path=("main", "init"))
        space.allocate("heap_b", 256, call_path=("main", "other"))
        space.allocate("globals", 128, segment="static")
        return space

    def test_find_maps_addresses_to_objects(self):
        registry = DataObjectRegistry.from_address_space(self._space())
        obj = registry.by_name("heap_a")[0]
        assert registry.find(obj.base + 100).name == "heap_a"
        assert registry.find(obj.base - 1) is None or registry.find(obj.base - 1).name != "heap_a"

    def test_identity_distinguishes_static_and_heap(self):
        registry = DataObjectRegistry.from_address_space(self._space())
        heap = registry.by_name("heap_a")[0]
        static = registry.by_name("globals")[0]
        assert heap.identity[0] == "heap"
        assert "main" in heap.identity
        assert static.identity == ("static", "globals")

    def test_objects_sorted_and_ids_consistent(self):
        registry = DataObjectRegistry.from_address_space(self._space())
        bases = [o.base for o in registry.objects]
        assert bases == sorted(bases)
        for i, obj in enumerate(registry.objects):
            assert registry.object(i) is obj

    def test_miss_outside_all_objects(self):
        registry = DataObjectRegistry.from_address_space(self._space())
        assert registry.find(0x1) is None


class TestThreadProfile:
    def test_stream_created_lazily_and_cached(self):
        profile = ThreadProfile(thread=0)
        s1 = profile.stream(0x400000, 0, ("heap", "A"))
        s2 = profile.stream(0x400000, 0, ("heap", "A"))
        assert s1 is s2
        assert len(profile.streams) == 1

    def test_data_latency_accumulates(self):
        profile = ThreadProfile(thread=0)
        profile.add_data_latency(("heap", "A"), 5.0)
        profile.add_data_latency(("heap", "A"), 3.0)
        assert profile.data_latency[("heap", "A")] == 8.0

    def test_roundtrip_through_dict(self):
        profile = ThreadProfile(thread=2, program="t", total_latency=9.0,
                                sample_count=3)
        s = profile.stream(0x400010, 1, ("heap", "A"))
        s.update(100, 4.0)
        s.update(164, 5.0)
        s.line, s.loop_id, s.data_base = 7, 0, 64
        profile.add_data_latency(("heap", "A"), 9.0)

        clone = ThreadProfile.from_dict(profile.to_dict())
        assert clone.thread == 2
        assert clone.total_latency == 9.0
        key = (0x400010, 1, ("heap", "A"))
        assert key in clone.streams
        restored = clone.streams[key]
        assert restored.stride == 64
        assert restored.min_address == 100
        assert restored.loop_id == 0
        assert clone.data_latency[("heap", "A")] == 9.0

    def test_save_load_file(self, tmp_path):
        profile = ThreadProfile(thread=0, program="x")
        profile.stream(1, 0, ("heap", "A")).update(10, 1.0)
        path = tmp_path / "p.json"
        profile.save(path)
        loaded = ThreadProfile.load(path)
        assert loaded.program == "x"
        assert len(loaded.streams) == 1

    def test_streams_for_filters_by_identity(self):
        profile = ThreadProfile(thread=0)
        profile.stream(1, 0, ("heap", "A"))
        profile.stream(2, 0, ("heap", "B"))
        assert len(profile.streams_for(("heap", "A"))) == 1
