"""Unit tests for the workload IR: expressions, loops, finalize."""

import pytest

from repro.program import (
    Access,
    Affine,
    Call,
    Compute,
    Const,
    Function,
    Indirect,
    Loop,
    Mod,
    Program,
    affine,
)


class TestIndexExprs:
    def test_const(self):
        assert Const(7).evaluate({}) == 7

    def test_affine(self):
        assert Affine("i", 3, 2).evaluate({"i": 5}) == 17
        assert affine("i").evaluate({"i": 4}) == 4

    def test_indirect_gathers_through_table(self):
        expr = Indirect((5, 3, 9), affine("i"))
        assert expr.evaluate({"i": 2}) == 9

    def test_indirect_of_builds_tuple(self):
        expr = Indirect.of([1, 2], Const(0))
        assert expr.table == (1, 2)

    def test_mod_wraps(self):
        expr = Mod(Affine("i", 1, 5), 8)
        assert expr.evaluate({"i": 6}) == 3

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            affine("j").evaluate({"i": 0})


class TestLoop:
    def test_trip_count(self):
        assert Loop(line=1, var="i", start=0, stop=10).trip_count == 10
        assert Loop(line=1, var="i", start=0, stop=10, step=3).trip_count == 4
        assert Loop(line=1, var="i", start=10, stop=0, step=-2).trip_count == 5
        assert Loop(line=1, var="i", start=5, stop=5).trip_count == 0

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            Loop(line=1, var="i", start=0, stop=1, step=0)

    def test_line_range_defaults_to_header(self):
        assert Loop(line=9, var="i", start=0, stop=1).line_range == (9, 9)
        assert Loop(line=9, var="i", start=0, stop=1, end_line=12).line_range == (9, 12)


class TestStatementValidation:
    def test_access_requires_array(self):
        with pytest.raises(ValueError):
            Access(line=1)

    def test_call_requires_callee(self):
        with pytest.raises(ValueError):
            Call(line=1)


def two_loop_program():
    inner = Loop(line=3, var="j", start=0, stop=4, body=[
        Access(line=4, array="A", field="x", index=affine("j")),
    ])
    outer = Loop(line=2, var="i", start=0, stop=4, body=[inner], end_line=5)
    helper = Function("helper", [Compute(line=20, cycles=1.0)], line=19)
    main = Function("main", [outer, Call(line=8, callee="helper")], line=1)
    return Program("two", [main, helper]).finalize()


class TestProgram:
    def test_ips_are_unique_and_ordered(self):
        program = two_loop_program()
        ips = [stmt.ip for _, stmt in program.walk()]
        assert len(ips) == len(set(ips))
        assert ips == sorted(ips)

    def test_stmt_at_roundtrips(self):
        program = two_loop_program()
        for _, stmt in program.walk():
            assert program.stmt_at(stmt.ip) is stmt

    def test_function_of_ip(self):
        program = two_loop_program()
        for fname, stmt in program.walk():
            assert program.function_of_ip(stmt.ip) == fname
        assert program.function_of_ip(0) is None

    def test_loops_and_accesses_enumerations(self):
        program = two_loop_program()
        assert len(program.loops()) == 2
        assert len(program.accesses()) == 1
        assert program.array_names() == ["A"]

    def test_unfinalized_program_refuses_queries(self):
        program = Program("p", [Function("main", [Compute(line=1)])])
        with pytest.raises(RuntimeError):
            program.stmt_at(0)

    def test_duplicate_function_rejected(self):
        fn = Function("main", [Compute(line=1)])
        with pytest.raises(ValueError, match="duplicate"):
            Program("p", [fn, Function("main", [Compute(line=2)])])

    def test_missing_entry_rejected(self):
        with pytest.raises(ValueError, match="entry"):
            Program("p", [Function("helper", [Compute(line=1)])], entry="main")
