"""Shared fixtures: small, fast workloads and hierarchies for unit tests."""

from __future__ import annotations

import pytest

from repro.layout import INT, StructType
from repro.memsim import HierarchyConfig
from repro.program import Access, Function, Loop, WorkloadBuilder, affine

#: The paper's Figure 1 structure.
FIGURE1_TYPE = StructType(
    "type", [("a", INT), ("b", INT), ("c", INT), ("d", INT)]
)


def build_figure1(n: int = 4096, plans=None, skew_bytes: int = 0):
    """The Figure 1 two-loop program, small enough for unit tests.

    ``skew_bytes`` pads the front of the heap so two builds get
    different absolute addresses — used to model separate processes.
    """
    builder = WorkloadBuilder(
        "figure1", variant="split" if plans else "original"
    )
    if skew_bytes:
        builder.space.allocate("aslr_skew", skew_bytes)
    if plans:
        from repro.layout import apply_split

        builder.add_split_aos(
            apply_split(FIGURE1_TYPE, plans["Arr"]), n, name="Arr",
            call_path=("main",),
        )
    else:
        builder.add_aos(FIGURE1_TYPE, n, name="Arr", call_path=("main",))
    builder.add_scalar("B", INT, n)
    builder.add_scalar("C", INT, n)
    body = [
        Loop(line=4, var="i", start=0, stop=n, end_line=5, body=[
            Access(line=5, array="Arr", field="a", index=affine("i")),
            Access(line=5, array="Arr", field="c", index=affine("i")),
            Access(line=5, array="B", index=affine("i"), is_write=True),
        ]),
        Loop(line=7, var="i", start=0, stop=n, end_line=8, body=[
            Access(line=8, array="Arr", field="b", index=affine("i")),
            Access(line=8, array="Arr", field="d", index=affine("i")),
            Access(line=8, array="C", index=affine("i"), is_write=True),
        ]),
    ]
    return builder.build([Function("main", body, line=1)])


@pytest.fixture
def figure1():
    return build_figure1()


@pytest.fixture
def small_config():
    """A scaled-down hierarchy so tiny arrays still miss."""
    return HierarchyConfig.small()
