"""Integration tests: the live event bus across the real pipeline.

The tentpole's contract mirrors the telemetry session's: observability
is purely observational.  With the bus disabled (``--quiet``) the CLI's
stdout is byte-identical to a bus-enabled run; with a live bus the
numeric results are identical to a plain run; and the committed bench
history snapshots attribute a regression to a named stage.
"""

import io
import json
from pathlib import Path

from repro.cli import main
from repro.experiments.optimization import run_benchmark
from repro.telemetry import events
from repro.telemetry.events import EventBus

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
HISTORY_DIR = REPO_ROOT / "benchmarks" / "history"


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestDisabledBusParity:
    def test_quiet_stdout_is_byte_identical(self):
        """--quiet (NULL_BUS) vs default (live bus): same stdout."""
        argv = ("analyze", "462.libquantum", "--scale", "0.2")
        code_live, text_live = run_cli(*argv)
        code_quiet, text_quiet = run_cli(*argv, "--quiet")
        assert code_live == code_quiet == 0
        assert text_live == text_quiet

    def test_live_bus_does_not_change_results(self):
        """Same workload with and without a subscribed bus."""
        plain = run_benchmark("462.libquantum", scale=0.2)
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        with events.use(bus):
            observed = run_benchmark("462.libquantum", scale=0.2)

        assert observed.speedup == plain.speedup
        assert observed.overhead_percent == plain.overhead_percent
        assert observed.miss_reduction == plain.miss_reduction
        assert observed.original.cycles == plain.original.cycles
        assert observed.optimized.cycles == plain.optimized.cycles
        assert observed.original.misses() == plain.original.misses()
        # The run is not silent: the interpret/simulate loops report
        # progress through the bus while producing identical numbers.
        assert seen
        assert {e.type for e in seen} <= {
            "span-open", "span-close", "metric-delta", "task-start",
            "task-finish", "cache-hit", "stage-progress",
        }
        assert events.bus() is events.NULL_BUS

    def test_stage_progress_reaches_stderr_reporter(self, capsys):
        code, _ = run_cli("analyze", "462.libquantum", "--scale", "0.2")
        assert code == 0
        err = capsys.readouterr().err
        assert "runner" not in err or "misses=" in err

    def test_live_stream_written_as_jsonl(self, tmp_path):
        live = tmp_path / "live.jsonl"
        code, _ = run_cli("analyze", "462.libquantum", "--scale", "0.2",
                          "--quiet", "--live", str(live))
        assert code == 0
        rows = [json.loads(line)
                for line in live.read_text().splitlines()]
        assert rows
        assert all("type" in row and "ts" in row for row in rows)


class TestCommittedHistoryAttribution:
    def test_store_has_at_least_two_snapshots(self):
        assert len(list(HISTORY_DIR.glob("bench-*.json"))) >= 2

    def test_attribute_names_the_dominant_stage(self):
        entries = sorted(
            HISTORY_DIR.glob("bench-*.json"),
            key=lambda p: json.loads(p.read_text())["stamp"],
        )
        code, text = run_cli(
            "attribute", str(entries[0]), str(entries[-1]),
            "--history", str(HISTORY_DIR),
        )
        assert code == 0
        assert "<- dominant" in text
        dominant_line = next(
            line for line in text.splitlines() if "<- dominant" in line
        )
        assert any(stage in dominant_line
                   for stage in ("interpret", "simulate", "sample"))

    def test_trend_renders_the_committed_store(self):
        code, text = run_cli("bench", "--trend",
                             "--history", str(HISTORY_DIR))
        assert code == 0
        assert "snapshot(s)" in text
        for path in HISTORY_DIR.glob("bench-*.json"):
            entry_id = json.loads(path.read_text())["id"]
            assert entry_id[:12] in text


class TestDashSmoke:
    def test_dash_embeds_latest_history_entry(self, tmp_path):
        out = tmp_path / "dash.html"
        code, text = run_cli("dash", str(out),
                             "--history", str(HISTORY_DIR))
        assert code == 0
        assert "wrote" in text
        html_text = out.read_text()
        latest = max(
            (json.loads(p.read_text())
             for p in HISTORY_DIR.glob("bench-*.json")),
            key=lambda e: e["stamp"],
        )
        assert latest["id"] in html_text
        assert 'id="repro-dash-data"' in html_text
