"""Integration: each §6 narrative must reproduce from a monitored run.

These tests run the full pipeline (profile -> analyze -> advise) on
every Table 2 benchmark at a reduced scale and check the *qualitative*
claims of each subsection: which structure is hot, which fields
dominate, and — most importantly — that the derived split plan matches
the one the paper published (Figures 7-13).
"""

import pytest

from repro.core import OfflineAnalyzer, derive_plans
from repro.profiler import Monitor
from repro.workloads import TABLE2_WORKLOADS

SCALE = 0.4


def plan_groups(plan):
    return {frozenset(group) for group in plan.groups}


@pytest.fixture(scope="module")
def runs():
    """One monitored run + analysis per benchmark, shared module-wide."""
    results = {}
    for name, factory in TABLE2_WORKLOADS.items():
        workload = factory(scale=SCALE)
        monitor = Monitor(sampling_period=max(64, workload.recommended_period // 3))
        run = monitor.run(workload.build_original(), num_threads=workload.num_threads)
        report = OfflineAnalyzer().analyze(run)
        plans = derive_plans(report, workload.target_structs())
        results[name] = (workload, run, report, plans)
    return results


@pytest.mark.parametrize("name", list(TABLE2_WORKLOADS))
def test_derived_plan_matches_the_published_split(runs, name):
    workload, _, _, plans = runs[name]
    paper = workload.paper_plans()
    assert set(plans) == set(paper), f"{name}: wrong arrays split"
    for array, plan in plans.items():
        assert plan_groups(plan) == plan_groups(paper[array]), (
            f"{name}/{array}: derived {plan.describe()} "
            f"!= paper {paper[array].describe()}"
        )


class TestArtNarrative:
    def test_f1_neuron_dominates_program_latency(self, runs):
        _, _, report, _ = runs["179.ART"]
        assert report.hot[0].name == "f1_layer"
        assert report.hot[0].share > 0.6  # paper: 80.4%

    def test_field_p_is_the_hottest(self, runs):
        _, _, report, _ = runs["179.ART"]
        analysis = report.object_by_name("f1_layer")
        shares = {o: analysis.recovered.latency_share(o)
                  for o in analysis.recovered.offsets}
        p_offset = 40
        assert shares[p_offset] == max(shares.values())
        assert shares[p_offset] > 0.6  # paper: 73.3%

    def test_field_r_never_sampled(self, runs):
        _, _, report, _ = runs["179.ART"]
        analysis = report.object_by_name("f1_layer")
        assert 56 not in analysis.recovered.offsets  # R at offset 56

    def test_recovered_element_size_is_64(self, runs):
        _, _, report, _ = runs["179.ART"]
        assert report.object_by_name("f1_layer").recovered.size == 64

    def test_iu_affinity_high_pu_affinity_low(self, runs):
        _, _, report, _ = runs["179.ART"]
        affinity = report.object_by_name("f1_layer").affinity
        assert affinity.affinity(0, 32) > 0.5     # I-U: paper 0.86
        assert affinity.affinity(32, 40) < 0.2    # P-U: paper 0.05
        assert affinity.affinity(16, 48) > 0.9    # X-Q: paper ~1


class TestLibquantumNarrative:
    def test_reg_nodes_account_for_nearly_all_latency(self, runs):
        _, _, report, _ = runs["462.libquantum"]
        assert report.hot[0].name == "reg_nodes"
        assert report.hot[0].share > 0.95  # paper: 99.9%

    def test_state_takes_all_sampled_latency(self, runs):
        _, _, report, _ = runs["462.libquantum"]
        analysis = report.object_by_name("reg_nodes")
        state_offset = 8
        assert analysis.recovered.latency_share(state_offset) > 0.99

    def test_recovered_size_is_16(self, runs):
        _, _, report, _ = runs["462.libquantum"]
        assert report.object_by_name("reg_nodes").recovered.size == 16


class TestTspNarrative:
    def test_next_dominates_then_x_then_y(self, runs):
        _, _, report, _ = runs["TSP"]
        analysis = report.object_by_name("tree_nodes")
        share = analysis.recovered.latency_share
        next_o, x_o, y_o = 32, 8, 16
        assert share(next_o) > 0.5          # paper: 80.7%
        assert share(next_o) > share(x_o) >= share(y_o) * 0.5

    def test_hot_trio_has_affinity_one(self, runs):
        _, _, report, _ = runs["TSP"]
        affinity = report.object_by_name("tree_nodes").affinity
        assert affinity.affinity(8, 16) == pytest.approx(1.0)
        assert affinity.affinity(8, 32) == pytest.approx(1.0)


class TestMserNarrative:
    def test_node_t_is_hot_but_minor(self, runs):
        _, _, report, _ = runs["Mser"]
        entry = next(e for e in report.hot if e.name == "forest")
        assert 0.1 < entry.share < 0.5  # paper: 21.2%

    def test_parent_alone_with_stride_16(self, runs):
        _, _, report, _ = runs["Mser"]
        analysis = report.object_by_name("forest")
        assert analysis.recovered.size == 16
        assert analysis.recovered.offsets == [0]  # parent at offset 0


class TestClompNarrative:
    def test_zones_dominate(self, runs):
        _, _, report, _ = runs["CLOMP 1.2"]
        assert report.hot[0].name == "zones"
        assert report.hot[0].share > 0.7  # paper: 89.1%

    def test_value_and_nextzone_fully_affine(self, runs):
        _, _, report, _ = runs["CLOMP 1.2"]
        affinity = report.object_by_name("zones").affinity
        assert affinity.affinity(16, 24) == pytest.approx(1.0)

    def test_all_four_threads_contributed(self, runs):
        _, run, _, _ = runs["CLOMP 1.2"]
        assert set(run.profiles) == {0, 1, 2, 3}


class TestHealthNarrative:
    def test_patients_dominate(self, runs):
        _, _, report, _ = runs["Health"]
        assert report.hot[0].name == "patients"
        assert report.hot[0].share > 0.8  # paper: 95.2%

    def test_forward_has_low_affinity_with_everything(self, runs):
        _, _, report, _ = runs["Health"]
        analysis = report.object_by_name("patients")
        forward = 32
        for other in analysis.recovered.offsets:
            if other != forward:
                assert analysis.affinity.affinity(forward, other) < 0.5


class TestNnNarrative:
    def test_dist_carries_nearly_all_latency(self, runs):
        _, _, report, _ = runs["NN"]
        analysis = report.object_by_name("neighbors")
        assert analysis.recovered.latency_share(48) > 0.9  # paper: 99.1%

    def test_recovered_size_is_56(self, runs):
        _, _, report, _ = runs["NN"]
        assert report.object_by_name("neighbors").recovered.size == 56
