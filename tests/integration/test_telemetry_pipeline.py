"""Integration tests: telemetry across the full pipeline.

Two guarantees matter end-to-end: ``repro trace`` produces a loadable
Chrome trace covering every pipeline stage, and enabling telemetry is
purely observational — the same run with and without an active session
produces bit-identical results.
"""

import io
import json

from repro import telemetry
from repro.cli import main
from repro.experiments.optimization import run_benchmark

#: Every stage the tentpole instruments, monitored run through re-run.
PIPELINE_STAGES = {
    "optimize", "run", "interpret", "simulate", "sample",
    "collect", "merge", "analyze", "cluster", "advise", "split", "re-run",
}


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestTraceCommand:
    def test_trace_art_emits_loadable_trace_with_all_stages(self, tmp_path):
        code, text = run_cli("trace", "art", "--scale", "0.2",
                             "--telemetry", str(tmp_path))
        assert code == 0
        assert "traced 179.ART" in text

        doc = json.loads((tmp_path / "trace.json").read_text())
        assert doc["displayTimeUnit"] == "ms"
        names = {event["name"] for event in doc["traceEvents"]
                 if event["ph"] == "X"}
        assert PIPELINE_STAGES <= names
        # Complete events carry timestamps and durations in microseconds.
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                assert event["ts"] >= 0 and event["dur"] >= 0

        # The JSONL sidecar parses line by line.
        lines = (tmp_path / "telemetry.jsonl").read_text().splitlines()
        assert all(json.loads(line) for line in lines)

        # The metrics snapshot includes per-level cache counters.
        prom = (tmp_path / "metrics.prom").read_text()
        for level in ("L1", "L2", "L3"):
            assert f'repro_memsim_cache_misses_total{{level="{level}"}}' in prom

        # And the overhead account's components sum to its total.
        accounts = json.loads((tmp_path / "overhead.json").read_text())
        account = accounts[0]
        total = sum(account["components_percent"].values())
        assert abs(total - account["overhead_percent"]) < 1e-9

    def test_trace_resolves_aliases_and_rejects_unknown(self, tmp_path):
        code, text = run_cli("trace", "no-such-benchmark",
                             "--telemetry", str(tmp_path))
        assert code == 2
        assert "unknown workload" in text

    def test_stats_prints_metrics_and_account(self):
        code, text = run_cli("stats", "libquantum", "--scale", "0.1")
        assert code == 0
        assert 'repro_memsim_cache_misses_total{level="L1"}' in text
        assert "self-overhead account: 462.libquantum" in text
        assert "interrupt-service" in text
        assert "online-analysis" in text
        assert "collection" in text
        assert "overhead (sum)" in text
        assert "reported overhead_percent" in text


class TestNoOpParity:
    def test_telemetry_does_not_change_results(self):
        """Same workload, with and without a session: identical outputs."""
        plain = run_benchmark("462.libquantum", scale=0.2)
        with telemetry.session():
            traced = run_benchmark("462.libquantum", scale=0.2)

        assert traced.speedup == plain.speedup
        assert traced.overhead_percent == plain.overhead_percent
        assert traced.miss_reduction == plain.miss_reduction
        assert traced.original.cycles == plain.original.cycles
        assert traced.optimized.cycles == plain.optimized.cycles
        assert traced.original.misses() == plain.original.misses()
        assert traced.optimized.misses() == plain.optimized.misses()
        assert traced.profiled.sample_count == plain.profiled.sample_count
        assert sorted(traced.plans) == sorted(plain.plans)
        for name in plain.plans:
            assert traced.plans[name].groups == plain.plans[name].groups

    def test_session_left_no_global_state(self):
        assert telemetry.enabled() is False
