"""Acceptance gate: ``table3 --engine scalar`` == ``--engine batched``.

The batched engine's whole claim is that it changes nothing but wall
time. This drives the real CLI twice at a reduced scale and asserts
the rendered Tables 3 and 4 — speedups, miss rates, every formatted
digit — are byte-identical between engines, in both the human and the
``--json`` renderings.
"""

import io

from repro.cli import main

SCALE = "0.05"


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    assert code == 0
    return out.getvalue()


class TestTable3EngineParity:
    def test_tables_are_byte_identical(self):
        scalar = run_cli(["table3", "--scale", SCALE, "--engine", "scalar"])
        batched = run_cli(["table3", "--scale", SCALE, "--engine", "batched"])
        assert scalar == batched
        assert "Table 3" in scalar

    def test_json_rendering_is_byte_identical(self):
        scalar = run_cli(
            ["table3", "--scale", SCALE, "--engine", "scalar", "--json"]
        )
        batched = run_cli(
            ["table3", "--scale", SCALE, "--engine", "batched", "--json"]
        )
        assert scalar == batched


class TestAnalyzeEngineParity:
    def test_analyze_output_is_byte_identical(self):
        scalar = run_cli(["analyze", "179.ART", "--scale", SCALE,
                          "--engine", "scalar"])
        batched = run_cli(["analyze", "179.ART", "--scale", SCALE,
                           "--engine", "batched"])
        assert scalar == batched
