"""Integration: full API journeys a downstream user would take."""

import pytest

from repro.core import OfflineAnalyzer, derive_plans, optimize
from repro.memsim import miss_reduction, speedup
from repro.profiler import Monitor, ThreadProfile, reduction_tree_merge
from repro.workloads import TABLE2_WORKLOADS, ArtWorkload

from ..conftest import FIGURE1_TYPE, build_figure1


class TestFigure1Journey:
    """The motivating example must work exactly as the paper tells it."""

    @pytest.fixture(scope="class")
    def cycle(self):
        bound = build_figure1(n=16384)
        monitor = Monitor(sampling_period=131)
        run = monitor.run(bound)
        report = OfflineAnalyzer().analyze(run)
        plans = derive_plans(report, {"Arr": FIGURE1_TYPE})
        optimized = monitor.run_unmonitored(build_figure1(n=16384, plans=plans))
        return run, report, plans, optimized

    def test_recommends_the_figure1_split(self, cycle):
        _, _, plans, _ = cycle
        groups = {frozenset(g) for g in plans["Arr"].groups}
        assert groups == {frozenset({"a", "c"}), frozenset({"b", "d"})}

    def test_split_is_faster(self, cycle):
        run, _, _, optimized = cycle
        assert speedup(run.metrics, optimized) > 1.02

    def test_split_reduces_l1_misses(self, cycle):
        run, _, _, optimized = cycle
        assert miss_reduction(run.metrics, optimized)["L1"] > 20

    def test_scalar_arrays_are_not_split(self, cycle):
        _, report, _, _ = cycle
        for analysis in report.objects.values():
            if analysis.name in ("B", "C") and analysis.advice is not None:
                assert not analysis.advice.should_split()


class TestProfileFileHandoff:
    """Profiler -> files -> analyzer, like the real tool's two halves."""

    def test_analysis_from_reloaded_profiles_matches_direct(self, tmp_path):
        workload = ArtWorkload(scale=0.15)
        monitor = Monitor(sampling_period=127)
        run = monitor.run(workload.build_original())

        direct = OfflineAnalyzer().analyze(run)

        paths = []
        for thread, profile in run.profiles.items():
            path = tmp_path / f"t{thread}.json"
            profile.save(path)
            paths.append(path)
        merged = reduction_tree_merge([ThreadProfile.load(p) for p in paths])
        reloaded = OfflineAnalyzer().analyze_profile(
            merged, loop_map=run.loop_map, workload=run.workload,
        )

        assert reloaded.total_latency == direct.total_latency
        assert [e.identity for e in reloaded.hot] == [e.identity for e in direct.hot]
        a = direct.object_by_name("f1_layer")
        b = reloaded.object_by_name("f1_layer")
        assert a.recovered.size == b.recovered.size
        assert a.recovered.offsets == b.recovered.offsets


class TestOptimizeAPI:
    def test_optimize_runs_a_real_benchmark(self):
        result = optimize(TABLE2_WORKLOADS["462.libquantum"](scale=0.3))
        assert result.workload == "462.libquantum"
        assert result.plans
        assert result.speedup > 1.0
        assert result.overhead_percent < 20.0
        assert "reg_nodes" in result.plans

    def test_explicit_thread_override(self):
        result = optimize(
            TABLE2_WORKLOADS["CLOMP 1.2"](scale=0.15), num_threads=2
        )
        assert result.original.num_threads == 2


class TestMergedVsPerThreadAnalysis:
    """§4.4: merging per-thread profiles must not lose the signal."""

    def test_parallel_profile_merge_preserves_structure_recovery(self):
        workload = TABLE2_WORKLOADS["NN"](scale=0.3)
        monitor = Monitor(sampling_period=173)
        run = monitor.run(workload.build_original(), num_threads=4)
        assert len(run.profiles) == 4

        report = OfflineAnalyzer().analyze(run)
        merged_analysis = report.object_by_name("neighbors")
        assert merged_analysis.recovered.size == 56

        # Each thread alone saw only its chunk; per-thread analysis of
        # the hot structure still recovers the same element size.
        for profile in run.profiles.values():
            solo = OfflineAnalyzer().analyze_profile(
                profile, loop_map=run.loop_map, workload=run.workload
            )
            analysis = solo.object_by_name("neighbors")
            if analysis is not None and analysis.recovered is not None:
                assert analysis.recovered.size == 56
