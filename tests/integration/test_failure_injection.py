"""Integration: degraded inputs and violated assumptions.

StructSlim's methodology rests on assumptions the paper states
explicitly (one field per instruction per context, enough samples per
stream). These tests inject violations and starvation and check the
analysis degrades the way the paper predicts — gracefully, never by
crashing or by fabricating advice.
"""

import pytest

from repro.core import OfflineAnalyzer, derive_plans
from repro.layout import DOUBLE, INT, StructType
from repro.profiler import Monitor
from repro.program import (
    Access,
    Function,
    Loop,
    Mod,
    WorkloadBuilder,
    affine,
)

from ..conftest import FIGURE1_TYPE, build_figure1


class TestSampleStarvation:
    def test_no_samples_yields_empty_report_not_crash(self):
        bound = build_figure1(n=256)
        monitor = Monitor(sampling_period=10**9)
        run = monitor.run(bound)
        assert run.sample_count == 0
        report = OfflineAnalyzer().analyze(run)
        assert report.hot == []
        assert derive_plans(report, {"Arr": FIGURE1_TYPE}) == {}

    def test_one_sample_gives_no_stride_advice(self):
        bound = build_figure1(n=4096)
        monitor = Monitor(sampling_period=3 * 2 * 4096 - 1, seed=3)
        run = monitor.run(bound)
        report = OfflineAnalyzer().analyze(run)
        # With <=1 sample per stream no structure can be recovered...
        plans = derive_plans(report, {"Arr": FIGURE1_TYPE})
        # ...so either no plan, or (if two unique samples landed in one
        # stream) a legitimate one — never an exception.
        assert isinstance(plans, dict)

    def test_sparse_sampling_still_finds_the_split(self):
        # ~25 samples across the run is enough: the hot streams still
        # collect the >=2 unique addresses the GCD needs.
        bound = build_figure1(n=65536)
        monitor = Monitor(sampling_period=16001, seed=1)
        run = monitor.run(bound)
        report = OfflineAnalyzer().analyze(run)
        plans = derive_plans(report, {"Arr": FIGURE1_TYPE})
        if "Arr" in plans:  # sampling-dependent, but never wrong:
            for group in plans["Arr"].groups:
                assert set(group) in ({"a", "c"}, {"b", "d"}, {"a"}, {"b"},
                                      {"c"}, {"d"})


MIXED = StructType("mixed", [("a", DOUBLE), ("b", DOUBLE)])


class TestAssumptionViolation:
    """One instruction alternating between two fields of one object."""

    def _bound(self, n=8192):
        builder = WorkloadBuilder("violator")
        builder.add_aos(MIXED, n, name="M")
        # A single access site whose byte offset alternates: element
        # 2k reads field a, element 2k+1 reads field b -- the address
        # sequence is 0, 24, 32, 56, 64, ... (stride collapses to 8).
        body = [
            Loop(line=10, var="i", start=0, stop=2 * n - 1, body=[
                Access(line=11, array="M", field="a",
                       index=Mod(affine("i", 1, 0), n)),
                Access(line=12, array="M", field="b",
                       index=Mod(affine("i", 1, 1), n)),
            ], end_line=12),
        ]
        return builder.build([Function("main", body, line=1)])

    def test_gcd_collapses_but_analysis_survives(self):
        monitor = Monitor(sampling_period=101)
        run = monitor.run(self._bound())
        report = OfflineAnalyzer().analyze(run)
        analysis = report.object_by_name("M")
        # Wrap-around indexing breaks the constant stride: recovered
        # size is a divisor of the real 16-byte element, so advice is
        # either absent or conservative -- but never a crash.
        if analysis is not None and analysis.recovered is not None:
            assert MIXED.size % analysis.recovered.size == 0 or \
                analysis.recovered.size % MIXED.size == 0


class TestColdStructures:
    def test_never_accessed_object_is_filtered(self):
        builder = WorkloadBuilder("cold")
        builder.add_aos(MIXED, 1024, name="hot")
        builder.add_aos(MIXED, 1024, name="never_touched")
        body = [Loop(line=1, var="i", start=0, stop=1024, body=[
            Access(line=2, array="hot", field="a", index=affine("i")),
        ])]
        bound = builder.build([Function("main", body)])
        run = Monitor(sampling_period=37).run(bound)
        report = OfflineAnalyzer().analyze(run)
        assert all(e.name != "never_touched" for e in report.hot)

    def test_low_share_object_dropped_by_min_share(self):
        builder = WorkloadBuilder("skew")
        builder.add_aos(MIXED, 4096, name="hot")
        builder.add_aos(MIXED, 64, name="tiny")
        body = [
            Loop(line=1, var="i", start=0, stop=4096, body=[
                Access(line=2, array="hot", field="a", index=affine("i")),
            ]),
            Loop(line=5, var="j", start=0, stop=8, body=[
                Access(line=6, array="tiny", field="a", index=affine("j")),
            ]),
        ]
        bound = builder.build([Function("main", body)])
        run = Monitor(sampling_period=17).run(bound)
        report = OfflineAnalyzer(min_share=0.05).analyze(run)
        assert all(e.name != "tiny" for e in report.hot)


class TestWriteOnlyFields:
    def test_pebs_blindness_to_stores_shows_as_unobserved_field(self):
        # Field b is only ever written: PEBS-LL (loads) never sees it,
        # so it must come out as a cold singleton, like ART's field R.
        builder = WorkloadBuilder("writeonly")
        builder.add_aos(MIXED, 8192, name="M")
        body = [Loop(line=1, var="i", start=0, stop=8192, body=[
            Access(line=2, array="M", field="a", index=affine("i")),
            Access(line=3, array="M", field="b", index=affine("i"),
                   is_write=True),
        ])]
        bound = builder.build([Function("main", body)])
        run = Monitor(sampling_period=53).run(bound)
        report = OfflineAnalyzer().analyze(run)
        analysis = report.object_by_name("M")
        assert analysis.recovered.offsets == [0]
        plan = derive_plans(report, {"M": MIXED})["M"]
        assert {frozenset(g) for g in plan.groups} == {
            frozenset({"a"}), frozenset({"b"}),
        }
