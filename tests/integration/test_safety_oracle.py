"""Acceptance gate for the split-safety verifier and its dynamic oracle.

Three claims, over the full workload zoo:

* every Table 2 workload's advised split is classified SAFE — the
  verifier never blocks the paper's own transformations;
* both adversarial workloads are profitable to split by the Eq 7
  pipeline (the advice is a real, non-identity split) yet classified
  UNSAFE with a concrete hazard reason and IR site — the gap the
  verifier exists to close;
* on every multi-threaded zoo workload, the static false-sharing
  detector's flagged lines cover the cache lines memsim's MESI
  directory actually invalidated during a replay.
"""

import pytest

from repro.core import OfflineAnalyzer, derive_plans
from repro.memsim import HierarchyConfig
from repro.profiler import Monitor
from repro.static import (
    SAFE,
    UNSAFE,
    cross_validate_false_sharing,
    verify_split_safety,
)
from repro.workloads import (
    ADVERSARIAL_WORKLOADS,
    TABLE2_WORKLOADS,
    workload_zoo,
)

SCALE = 0.05

MULTICORE = sorted(
    name for name, cls in workload_zoo().items() if cls.num_threads > 1
)


def advised_split(workload):
    """The CLI's optimize flow up to (but not including) the rewrite."""
    monitor = Monitor(sampling_period=workload.recommended_period)
    bound = workload.build_original()
    run = monitor.run(bound, num_threads=workload.num_threads)
    report = OfflineAnalyzer().analyze(run)
    return bound, derive_plans(report, workload.target_structs())


class TestTable2AdviceIsSafe:
    @pytest.mark.parametrize("name", sorted(TABLE2_WORKLOADS))
    def test_advised_split_verifies_safe(self, name):
        workload = TABLE2_WORKLOADS[name](scale=SCALE)
        bound, plans = advised_split(workload)
        assert plans, f"{name}: pipeline advised no split"
        report = verify_split_safety(bound, sorted(plans))
        assert report.all_safe, report.render()
        for array in plans:
            assert report.verdict_for(array).status == SAFE


class TestAdversarialAdviceIsUnsafe:
    @pytest.mark.parametrize("name", sorted(ADVERSARIAL_WORKLOADS))
    def test_profitable_but_unsafe(self, name):
        workload = ADVERSARIAL_WORKLOADS[name](scale=SCALE)
        assert workload.expected_unsafe
        bound, plans = advised_split(workload)
        # Profitable: Eq 7 advises a real split for at least one array.
        assert any(len(plan.groups) > 1 for plan in plans.values()), (
            f"{name}: advice is not a real split: {plans}"
        )
        report = verify_split_safety(bound, sorted(plans))
        unsafe = [v for v in report.verdicts.values() if v.status == UNSAFE]
        assert unsafe, report.render()
        for verdict in unsafe:
            assert verdict.reason
            assert verdict.site and ":" in verdict.site


class TestFalseSharingOracle:
    @pytest.mark.parametrize("name", MULTICORE)
    def test_static_flags_cover_mesi_invalidations(self, name):
        workload = workload_zoo()[name](scale=SCALE)
        bound = workload.build_original()
        oracle = cross_validate_false_sharing(
            bound,
            num_threads=workload.num_threads,
            config=HierarchyConfig.small(),
        )
        assert oracle.ok, oracle.render()

    def test_at_least_one_workload_actually_invalidates(self):
        # The subset relation is vacuous if no workload ever produces a
        # dynamic invalidation; OverlapView is built to produce them.
        workload = ADVERSARIAL_WORKLOADS["OverlapView"](scale=SCALE)
        oracle = cross_validate_false_sharing(
            workload.build_original(),
            num_threads=workload.num_threads,
            config=HierarchyConfig.small(),
        )
        assert oracle.ok
        assert sum(oracle.dynamic_lines.values()) > 0
        assert oracle.coverage == 1.0
