"""Streaming-engine parity: pipelined and replayed runs are identical.

The acceptance bar for the streaming engine: ``--pipeline on`` and
``--trace-store`` must never change a byte of any command's stdout —
analyze, optimize, table3, sensitivity — and a warm trace-store run
must visibly skip the interpret stage (the runner-stats line and the
``replay-hit`` bus event are the proof CI greps for).
"""

import io
import json

import pytest

from repro.cli import main
from repro.experiments import run_all, sweep_sampling_period
from repro.experiments.optimization import results_json
from repro.program.store import session_counters
from repro.telemetry import events, to_jsonable
from repro.workloads import TABLE2_WORKLOADS

NAMES = ["462.libquantum", "Mser"]
SCALE = 0.15


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def canonical(results):
    return json.dumps(to_jsonable(results_json(results)), sort_keys=True)


class TestAnalyzeParity:
    def test_pipelined_and_replayed_stdout_identical(self, tmp_path):
        base = ("analyze", "462.libquantum", "--scale", "0.1")
        code, serial = run_cli(*base)
        assert code == 0
        code, piped = run_cli(*base, "--pipeline", "on")
        assert code == 0
        assert piped == serial
        store = ("--trace-store", str(tmp_path / "ts"))
        _, cold = run_cli(*base, "--pipeline", "on", *store)
        _, warm = run_cli(*base, "--pipeline", "on", *store)
        assert cold == serial
        assert warm == serial


class TestOptimizeParity:
    def test_pipelined_and_replayed_stdout_identical(self, tmp_path):
        base = ("optimize", "462.libquantum", "--scale", "0.1")
        code, serial = run_cli(*base)
        assert code == 0
        store = ("--trace-store", str(tmp_path / "ts"))
        _, cold = run_cli(*base, "--pipeline", "on", *store)
        _, warm = run_cli(*base, *store)
        assert cold == serial
        assert warm == serial


class TestTable3Parity:
    def test_pipelined_results_identical(self, tmp_path):
        serial = run_all(scale=SCALE, names=NAMES)
        piped = run_all(scale=SCALE, names=NAMES, pipeline="on",
                        trace_store=tmp_path / "ts")
        warm = run_all(scale=SCALE, names=NAMES,
                       trace_store=tmp_path / "ts")
        assert canonical(piped) == canonical(serial)
        assert canonical(warm) == canonical(serial)


class TestSensitivityReplay:
    def test_sweep_interprets_once_and_warm_runs_zero_times(self, tmp_path):
        workload = TABLE2_WORKLOADS["Mser"](scale=SCALE)
        periods = [127, 509, 2003]
        serial = sweep_sampling_period(workload, periods)

        before = session_counters()
        cold = sweep_sampling_period(workload, periods,
                                     trace_store=tmp_path / "ts")
        mid = session_counters()
        warm = sweep_sampling_period(workload, periods,
                                     trace_store=tmp_path / "ts")
        after = session_counters()

        assert cold == serial
        assert warm == serial
        # Cold sweep: one capture, every later period replays.
        assert mid["captures"] - before["captures"] == 1
        assert mid["replays"] - before["replays"] == len(periods) - 1
        # Warm sweep: zero interpreter runs.
        assert after["captures"] == mid["captures"]
        assert after["replays"] - mid["replays"] == len(periods)
        assert after["interpret_skipped"] > mid["interpret_skipped"]

    def test_warm_run_reports_skipped_interpret_work(self, tmp_path):
        # Fresh processes, so the session counters on the stats line are
        # this run's alone: the warm process must capture *nothing*.
        import os
        import subprocess
        import sys
        from pathlib import Path

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        argv = [sys.executable, "-m", "repro", "sensitivity", "Mser",
                "--scale", "0.15", "--periods", "127", "509",
                "--trace-store", str(tmp_path / "ts")]
        cold = subprocess.run(argv, capture_output=True, text=True, env=env)
        warm = subprocess.run(argv, capture_output=True, text=True, env=env)
        assert cold.returncode == 0 and warm.returncode == 0
        assert warm.stdout == cold.stdout
        assert "trace store:" in warm.stderr
        assert "interpret-skipped" in warm.stderr
        assert "0 capture(s)" in warm.stderr
        assert "2 replay(s)" in warm.stderr


class TestReplayHitEvents:
    def test_replay_hit_published_on_live_bus(self, tmp_path):
        from repro.profiler.monitor import Monitor
        from repro.workloads.art import ArtWorkload

        workload = ArtWorkload(scale=0.05)
        bound = workload.build_original()
        store = str(tmp_path / "ts")
        Monitor(sampling_period=workload.recommended_period,
                trace_store=store).run(bound, num_threads=1)

        bus = events.EventBus()
        seen = []
        bus.subscribe(seen.append)
        previous = events.install(bus)
        try:
            monitor = Monitor(sampling_period=workload.recommended_period,
                              trace_store=store)
            monitor.run(bound, num_threads=1)
        finally:
            events.install(previous)
        hits = [e for e in seen if e.type == "replay-hit"]
        assert len(hits) == 1
        assert hits[0].data["accesses"] > 0
        assert monitor.replay_hits == 1
        assert monitor.interpret_skipped == hits[0].data["accesses"]
