"""Parallel runner parity: jobs=N and warm caches reproduce serial runs.

The acceptance bar for :mod:`repro.runner`: ``--jobs 4`` output is
byte-identical to a serial run, a warm ``--cache`` re-run executes zero
workloads while producing byte-identical output, and telemetry exported
from a parallel run matches what a serial run records.
"""

import io
import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.experiments import (
    run_all,
    run_suite_overheads,
    sweep_sampling_period,
)
from repro.experiments.optimization import results_json
from repro.runner import RunnerStats
from repro.telemetry import to_jsonable
from repro.workloads import TABLE2_WORKLOADS

NAMES = ["462.libquantum", "Mser"]
SCALE = 0.15


def canonical(results):
    return json.dumps(to_jsonable(results_json(results)), sort_keys=True)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParallelParity:
    def test_parallel_run_matches_serial(self):
        serial = run_all(scale=SCALE, names=NAMES)
        parallel = run_all(scale=SCALE, names=NAMES, jobs=2)
        assert canonical(parallel) == canonical(serial)

    def test_record_surface_matches_result_surface(self):
        serial = run_all(scale=SCALE, names=NAMES)
        parallel = run_all(scale=SCALE, names=NAMES, jobs=2)
        for name in NAMES:
            assert parallel[name].speedup == serial[name].speedup
            assert parallel[name].overhead_percent == \
                serial[name].overhead_percent
            assert parallel[name].miss_reduction == \
                serial[name].miss_reduction
            assert parallel[name].summary_row() == serial[name].summary_row()

    def test_suite_overheads_parallel_matches_serial(self):
        serial = run_suite_overheads("rodinia", limit=4)
        parallel = run_suite_overheads("rodinia", limit=4, jobs=2)
        assert parallel.rows == serial.rows

    def test_sensitivity_parallel_matches_serial(self):
        workload = TABLE2_WORKLOADS["Mser"](scale=SCALE)
        periods = [100, 499]
        serial = sweep_sampling_period(workload, periods)
        parallel = sweep_sampling_period(workload, periods, jobs=2)
        assert parallel == serial

    def test_sensitivity_parallel_rejects_anonymous_workloads(self):
        workload = TABLE2_WORKLOADS["Mser"](scale=SCALE)
        workload.name = "not-in-table2"
        with pytest.raises(ValueError, match="Table 2 workload"):
            sweep_sampling_period(workload, [499], jobs=2)


class TestCacheParity:
    def test_warm_cache_is_byte_identical_and_executes_nothing(self, tmp_path):
        cold_stats = RunnerStats()
        cold = run_all(scale=SCALE, names=NAMES, cache=tmp_path,
                       runner_stats=cold_stats)
        assert cold_stats.executed == len(NAMES)

        warm_stats = RunnerStats()
        warm = run_all(scale=SCALE, names=NAMES, cache=tmp_path,
                       runner_stats=warm_stats)
        assert warm_stats.executed == 0
        assert warm_stats.cache_hits == len(NAMES)
        assert canonical(warm) == canonical(cold)

    def test_parallel_warm_cache_matches_parallel_cold(self, tmp_path):
        cold = run_all(scale=SCALE, names=NAMES, jobs=2, cache=tmp_path)
        warm = run_all(scale=SCALE, names=NAMES, jobs=2, cache=tmp_path)
        assert canonical(warm) == canonical(cold)


class TestTelemetryAbsorption:
    def test_parallel_run_fills_parent_session(self):
        with telemetry.session() as parallel_session:
            run_all(scale=SCALE, names=NAMES, jobs=2)
        with telemetry.session() as serial_session:
            run_all(scale=SCALE, names=NAMES)

        def span_names(session):
            names = []

            def walk(span):
                names.append(span.name)
                for child in span.children:
                    walk(child)

            for root in session.tracer.roots:
                walk(root)
            return sorted(names)

        assert span_names(parallel_session) == span_names(serial_session)
        assert len(parallel_session.overhead_accounts) == \
            len(serial_session.overhead_accounts)

    def test_parallel_counters_match_serial(self):
        with telemetry.session() as parallel_session:
            run_all(scale=SCALE, names=NAMES, jobs=2)
        with telemetry.session() as serial_session:
            run_all(scale=SCALE, names=NAMES)

        def counters(session):
            return {
                (i.name, i.labels): i.value
                for i in session.metrics.instruments()
                if i.kind == "counter"
            }

        assert counters(parallel_session) == counters(serial_session)


class TestCliParity:
    def test_table3_cold_then_warm_cache_identical(self, tmp_path):
        argv = ("table3", "--scale", "0.1", "--json",
                "--jobs", "2", "--cache", str(tmp_path))
        code_cold, cold = run_cli(*argv)
        code_warm, warm = run_cli(*argv)
        assert code_cold == code_warm == 0
        assert warm == cold

    def test_table3_parallel_matches_serial_stdout(self):
        _, serial = run_cli("table3", "--scale", "0.1", "--json")
        _, parallel = run_cli("table3", "--scale", "0.1", "--json",
                              "--jobs", "2")
        assert parallel == serial

    def test_optimize_via_runner_matches_serial(self, tmp_path):
        _, serial = run_cli("optimize", "Mser", "--scale", "0.1")
        _, cached = run_cli("optimize", "Mser", "--scale", "0.1",
                            "--cache", str(tmp_path))
        _, warm = run_cli("optimize", "Mser", "--scale", "0.1",
                          "--cache", str(tmp_path))
        assert cached == serial
        assert warm == serial
