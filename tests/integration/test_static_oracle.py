"""Cross-validation oracle: sampled pipeline vs static analysis.

The acceptance bar from the paper's own claim (§4.2): at default
sampling settings the sampled struct size and field offsets must agree
with the exact static derivation for every Table 2 workload, and every
sampled stream stride must be a multiple of its static stride.
"""

import pytest

from repro.static import StaticAnalysis, cross_validate, cross_validate_report
from repro.workloads import TABLE2_WORKLOADS

ALL_WORKLOADS = sorted(TABLE2_WORKLOADS)


class TestTable2Agreement:
    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_full_agreement_at_default_settings(self, name):
        workload = TABLE2_WORKLOADS[name](scale=0.1)
        result = cross_validate(workload)
        assert result.ok, result.render()
        assert result.objects, "oracle compared nothing"
        for obj in result.objects:
            assert obj.size_match
            assert obj.offsets_agree
            assert obj.streams, f"{obj.name}: no streams cross-checked"
            for stream in obj.streams:
                assert stream.divides

    def test_hot_object_offsets_fully_covered_for_art(self):
        # ART's seven hot f1_layer fields all appear statically and the
        # default period samples every one of them.
        result = cross_validate(TABLE2_WORKLOADS["179.ART"](scale=0.1))
        f1 = next(o for o in result.objects if "f1" in o.name)
        assert f1.offset_coverage == pytest.approx(1.0)
        assert f1.static_size == 64

    def test_render_reports_status(self):
        result = cross_validate(TABLE2_WORKLOADS["462.libquantum"](scale=0.1))
        text = result.render()
        assert "OK" in text
        assert "divides-violations" in text


class TestOracleMechanics:
    def test_mismatch_detected_when_static_stride_corrupted(self):
        from repro.core import OfflineAnalyzer
        from repro.profiler import Monitor

        workload = TABLE2_WORKLOADS["462.libquantum"](scale=0.1)
        bound = workload.build_original()
        run = Monitor(sampling_period=workload.recommended_period).run(
            bound, num_threads=workload.num_threads
        )
        report = OfflineAnalyzer().analyze(run)
        static = StaticAnalysis().analyze(bound, loop_map=run.loop_map)
        # Corrupt every static stride to a value that cannot divide the
        # sampled ones: the oracle must notice.
        for stream in static.streams:
            stream.stride = 7 if stream.stride else 0
        result = cross_validate_report(static, run.merged, report)
        assert not result.ok
        assert any(not s.divides for s in result.stream_checks)
        assert "MISMATCH" in result.render()

    def test_sampled_offsets_never_exceed_static(self):
        # Subset relation: sampling can miss fields but never invent one.
        for name in ("Health", "TSP"):
            result = cross_validate(TABLE2_WORKLOADS[name](scale=0.1))
            for obj in result.objects:
                assert set(obj.sampled_offsets) <= set(obj.static_offsets)
                assert 0.0 < obj.offset_coverage <= 1.0
