"""Integration: every example script must run to completion.

Examples are API documentation; a broken example is a broken promise.
Each runs in-process (monkeypatched argv where needed) at a reduced
scale and its stdout is checked for the load-bearing lines.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(capsys, monkeypatch, script, *argv):
    monkeypatch.setattr(sys, "argv", [script] + list(argv))
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "quickstart.py")
    assert "advice: split type -> {a, c} | {b, d}" in out
    assert "speedup:" in out


def test_optimize_art(capsys, monkeypatch, tmp_path):
    dot = tmp_path / "art.dot"
    out = run_example(capsys, monkeypatch, "optimize_art.py",
                      "--scale", "0.3", "--dot", str(dot))
    assert "Table 5" in out
    assert "Table 6" in out
    assert "recommended split: split f1_neuron" in out
    assert dot.read_text().startswith('graph "f1_layer"')


def test_parallel_profiling(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "parallel_profiling.py",
                      "--scale", "0.2")
    assert "threads monitored: [0, 1, 2, 3]" in out
    assert "wrote 4 per-thread profile files" in out
    assert "speedup after split:" in out


def test_custom_workload(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "custom_workload.py")
    assert "suppressed[dead-field] particles.age" in out
    assert "0 error(s), 0 warning(s)" in out
    assert "advice: split particle" in out
    assert "speedup:" in out


def test_example_programs_lint_clean():
    # Every program an example builds passes the static linter: the
    # examples are API documentation, and the linter is part of the API.
    import runpy

    from repro.static import lint_program

    for script in ("quickstart.py", "custom_workload.py"):
        mod = runpy.run_path(str(EXAMPLES / script))
        report = lint_program(mod["build"]())
        assert report.ok(), f"{script}: {report.render()}"


def test_compare_baselines(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "compare_baselines.py",
                      "--scale", "0.1")
    assert "StructSlim (PEBS-LL)" in out
    assert "latency (StructSlim)" in out


def test_dsl_workload(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "dsl_workload.py")
    assert "advice: split body" in out
    assert "speedup:" in out


def test_regroup_arrays(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "regroup_arrays.py",
                      "--scale", "0.3")
    assert "regroup [ax, ay, az]" in out
    assert "speedup:" in out
