PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-quick bench-trend bench-baseline perf-smoke lint

test:
	$(PYTHON) -m pytest -x -q

# Full-scale engine benchmark; appends a content-addressed snapshot to
# benchmarks/history/ (commit it to record the performance trajectory;
# `repro bench --trend` renders the trajectory).
bench:
	$(PYTHON) -m repro bench

bench-quick:
	$(PYTHON) -m repro bench --quick

bench-trend:
	$(PYTHON) -m repro bench --trend

# Refresh the CI perf-smoke baseline. Run on the machine class CI
# uses, then commit benchmarks/baseline_bench.json with a note on why
# the envelope moved.
bench-baseline:
	$(PYTHON) -m repro bench --quick --out benchmarks/baseline_bench.json

# The gate CI runs: quick bench vs the committed baseline (>25%
# batched end-to-end throughput drop fails).
perf-smoke:
	$(PYTHON) -m repro bench --quick --check benchmarks/baseline_bench.json

lint:
	$(PYTHON) -m repro lint all --strict
