"""Shim for environments without the wheel package (editable installs)."""
from setuptools import setup

setup()
