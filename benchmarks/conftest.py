"""Benchmark-harness configuration.

Every benchmark regenerates one paper artifact (table or figure),
prints it in the paper's layout next to the published numbers, and
asserts the qualitative shape (who wins, by roughly what factor).

``REPRO_BENCH_SCALE`` scales the workloads (default 1.0 = paper-like
sizes; set 0.25 for a quick pass). Experiments that need exact cache
geometry ignore the variable and say so.
"""

import os

import pytest

#: Workload scale for the heavy optimization benchmarks.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def print_artifact(*blocks: str) -> None:
    """Print experiment output, clearly delimited in bench logs."""
    print()
    for block in blocks:
        print(block)
        print()


@pytest.fixture
def artifact_printer():
    return print_artifact
