"""Benchmark-harness configuration.

Every benchmark regenerates one paper artifact (table or figure),
prints it in the paper's layout next to the published numbers, and
asserts the qualitative shape (who wins, by roughly what factor).

``REPRO_BENCH_SCALE`` scales the workloads (default 1.0 = paper-like
sizes; set 0.25 for a quick pass). Experiments that need exact cache
geometry ignore the variable and say so.

``REPRO_BENCH_ENGINE`` selects the trace engine (``batched`` default,
``scalar`` for the reference path). Every pytest-benchmark record is
stamped with the mode in ``extra_info["engine"]``, so saved JSON from
the two modes can be compared without guessing which was which.
"""

import os

import pytest

#: Workload scale for the heavy optimization benchmarks.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Trace engine the engine-sensitive benchmarks run with.
BENCH_ENGINE = os.environ.get("REPRO_BENCH_ENGINE", "batched")
if BENCH_ENGINE not in ("scalar", "batched"):
    raise ValueError(
        f"REPRO_BENCH_ENGINE={BENCH_ENGINE!r}; expected scalar or batched"
    )


@pytest.fixture(autouse=True)
def _tag_engine_mode(request):
    """Stamp every pytest-benchmark record with the engine mode."""
    if "benchmark" in request.fixturenames:
        request.getfixturevalue("benchmark").extra_info["engine"] = BENCH_ENGINE
    yield


def print_artifact(*blocks: str) -> None:
    """Print experiment output, clearly delimited in bench logs."""
    print()
    for block in blocks:
        print(block)
        print()


@pytest.fixture
def artifact_printer():
    return print_artifact
