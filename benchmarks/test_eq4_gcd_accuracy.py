"""Equation 4: GCD stride-recovery accuracy vs unique sample count.

Regenerates the paper's analytical claim ("k larger than 10 gives
accuracy higher than 99%") with three curves: the closed-form lower
bound, the paper's exact combinatorial form, and the measured accuracy
of the actual gcd_stride implementation — plus our class-corrected
variant of Eq 4 (see DESIGN.md and the stride module).
"""

import pytest

from repro.core import accuracy_lower_bound, empirical_accuracy
from repro.core.stride import corrected_accuracy
from repro.experiments import run_accuracy_sweep, samples_needed

from .conftest import print_artifact


def test_eq4_accuracy_sweep(benchmark):
    table = benchmark.pedantic(
        lambda: run_accuracy_sweep(ks=tuple(range(2, 15)), n=10_000,
                                   trials=1_000),
        rounds=1, iterations=1,
    )
    print_artifact(table.render())

    bounds = table.column("lower bound")
    measured = table.column("measured")
    # Monotone improvement with k; >99% at the paper's k=10.
    assert bounds == sorted(bounds)
    ks = table.column("k")
    at_10 = measured[ks.index(10)]
    assert at_10 > 0.99
    # The paper's headline: about 10 samples suffice.
    assert samples_needed(0.99) <= 10


def test_measured_accuracy_tracks_corrected_eq4(benchmark):
    """Finding: the paper's Eq 4 numerator counts only the aligned
    residue class; correcting it (x p classes) matches measurement."""

    def measure():
        rows = []
        for k in (4, 5, 6, 8):
            rows.append((
                k,
                corrected_accuracy(8_000, k),
                empirical_accuracy(8_000, k, trials=2_000, true_stride=64),
            ))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    # (At k=3 the union bound double-counts overlapping residue classes
    # and undershoots by ~6 points; from k=4 on it tracks measurement.)
    for k, predicted, measured in rows:
        assert measured == pytest.approx(predicted, abs=0.04), k


def test_accuracy_independent_of_true_stride(benchmark):
    """Eq 4 is derived for unit stride but the paper claims the same
    conclusion for any stride; verify empirically."""

    def measure():
        return {
            stride: empirical_accuracy(4_000, 10, trials=800, true_stride=stride)
            for stride in (1, 16, 40, 56, 64)
        }

    accuracies = benchmark.pedantic(measure, rounds=1, iterations=1)
    for stride, accuracy in accuracies.items():
        assert accuracy > 0.98, stride
