"""Benchmarks for the implemented future-work extensions.

Not paper artifacts — §7 only *names* these directions — but the
harness treats them like experiments: declared expectations, printed
evidence.

1. Array regrouping (ArrayTool-style) on the SoA n-body kernel.
2. TLB-awareness: structure splitting also cuts page walks, and an
   enabled TLB model increases the measured benefit.
"""

import pytest

from repro.core import recommend_regrouping
from repro.experiments import Table
from repro.memsim import (
    HierarchyConfig,
    MemoryHierarchy,
    TLBConfig,
    miss_reduction,
    simulate,
    speedup,
)
from repro.profiler import Monitor
from repro.program import Interpreter
from repro.workloads import ArtWorkload, RegroupingWorkload

from .conftest import print_artifact


def test_extension_array_regrouping(benchmark):
    def run():
        workload = RegroupingWorkload(scale=1.0)
        monitor = Monitor(sampling_period=workload.recommended_period)
        original = monitor.run(workload.build_original())
        advice = recommend_regrouping(original.merged)
        regrouped = monitor.run_unmonitored(
            workload.build_regrouped(advice[0].names)
        )
        return original, advice, regrouped

    original, advice, regrouped = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)
    table = Table(
        "Extension: array regrouping (SS7 future work)",
        ["layout", "cycles", "L1 misses", "speedup"],
    )
    table.add_row("SoA (3 arrays)", original.metrics.cycles,
                  original.metrics.l1_misses, 1.0)
    table.add_row("interleaved", regrouped.cycles, regrouped.l1_misses,
                  speedup(original.metrics, regrouped))
    print_artifact(table.render(), advice[0].describe())

    assert [a.names for a in advice] == [("ax", "ay", "az")]
    assert speedup(original.metrics, regrouped) > 1.2
    assert miss_reduction(original.metrics, regrouped)["L1"] > 30


def test_extension_tlb_page_walks(benchmark):
    """Splitting ART's f1_neuron shrinks the hot loops' page footprint;
    with the TLB model on, page walks drop and the speedup grows."""

    def run():
        workload = ArtWorkload(scale=1.0)
        results = {}
        for label, config in (
            ("cache only", HierarchyConfig()),
            ("cache + TLB", HierarchyConfig(tlb=TLBConfig())),
        ):
            walks = {}
            cycles = {}
            for variant, bound in (
                ("original", workload.build_original()),
                ("split", workload.build_paper_split()),
            ):
                hier = MemoryHierarchy(config, 1)
                metrics = simulate(Interpreter(bound).run(), hierarchy=hier,
                                   name=workload.name, variant=variant)
                cycles[variant] = metrics.cycles
                walks[variant] = hier.miss_summary().get("page_walks", 0)
            results[label] = (cycles, walks)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Extension: TLB-aware view of structure splitting (ART)",
        ["configuration", "speedup", "walks before", "walks after"],
    )
    speedups = {}
    for label, (cycles, walks) in results.items():
        speedups[label] = cycles["original"] / cycles["split"]
        table.add_row(label, speedups[label], walks["original"],
                      walks["split"])
    print_artifact(table.render())

    _, tlb_walks = results["cache + TLB"]
    assert tlb_walks["split"] < tlb_walks["original"]
    # Accounting for translation makes the split look at least as good.
    assert speedups["cache + TLB"] >= speedups["cache only"] - 0.02
