"""Figures 4 and 5: monitoring overhead across Rodinia and SPEC CPU 2006.

The paper's claims: ~8.2% average on (parallel) Rodinia, ~4.2% on
(sequential) SPEC, every benchmark in low single to low double digits.
"""

import pytest

from repro.experiments import PAPER_AVERAGES, run_suite_overheads

from .conftest import print_artifact


def test_figure4_rodinia_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: run_suite_overheads("rodinia"), rounds=1, iterations=1
    )
    print_artifact(result.table().render(), result.chart())

    assert len(result.rows) == 18
    assert result.average == pytest.approx(PAPER_AVERAGES["rodinia"], abs=3.0)
    for name, value in result.rows:
        assert 0.5 < value < 25.0, name


def test_figure5_spec_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: run_suite_overheads("spec"), rounds=1, iterations=1
    )
    print_artifact(result.table().render(), result.chart())

    assert len(result.rows) == 19
    assert result.average == pytest.approx(PAPER_AVERAGES["spec"], abs=2.0)
    for name, value in result.rows:
        assert 0.3 < value < 12.0, name


def test_parallel_suite_costs_more_than_sequential(benchmark):
    """The cross-figure claim: Rodinia's average tops SPEC's."""
    rodinia, spec = benchmark.pedantic(
        lambda: (run_suite_overheads("rodinia", limit=6),
                 run_suite_overheads("spec", limit=6)),
        rounds=1, iterations=1,
    )
    assert rodinia.average > spec.average
