"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Collection cost: sampling vs the §3 instrumentation comparators.
2. Latency- vs frequency-weighted affinity (the paper's §4.3 argument).
3. Affinity-guided vs maximal splitting (Wang et al. [32]).
4. Prefetcher sensitivity of the splitting win.
"""

import pytest

from repro.experiments import (
    run_affinity_metric_ablation,
    run_collection_cost,
    run_maximal_split_ablation,
    run_prefetch_ablation,
)

from .conftest import print_artifact


def test_collection_cost_vs_baselines(benchmark):
    table = benchmark.pedantic(
        lambda: run_collection_cost(scale=0.25), rounds=1, iterations=1
    )
    print_artifact(table.render())

    rows = {str(row[0]): row for row in table.rows}
    # StructSlim collects at percent-level overhead...
    structslim_cost = float(rows["StructSlim (PEBS-LL)"][1].rstrip("%"))
    assert structslim_cost < 10.0
    # ...while every instrumentation comparator pays a multiple. The
    # absolute multiples depend on memory-op density (the paper's 153x
    # and 4.2x quotes are from memory-bound instrumented codes; ART's
    # FP work dilutes them), so we assert the ordering and the gap.
    slowdowns = {
        name: float(row[1].rstrip("x"))
        for name, row in rows.items()
        if row[1].endswith("x")
    }
    assert all(s > 1.05 for s in slowdowns.values())
    reuse = next(v for k, v in slowdowns.items() if "reuse" in k)
    aslop = next(v for k, v in slowdowns.items() if "ASLOP" in k)
    assert reuse > 8            # paper: 153x on memory-bound codes
    assert reuse > 5 * aslop    # reuse-distance is the outlier, as quoted
    # StructSlim's percent-level cost vs the cheapest baseline's
    # multiple: a >10x collection-cost gap.
    assert (1 + structslim_cost / 100) * 10 < min(slowdowns.values()) * 10 + reuse
    # Everyone still finds a split on ART (quality parity, cost gap).
    assert all(row[2] == "yes" for row in table.rows)


def test_latency_vs_frequency_affinity(benchmark):
    table = benchmark.pedantic(
        run_affinity_metric_ablation, rounds=1, iterations=1
    )
    print_artifact(table.render())

    by_metric = {str(row[0]): row for row in table.rows}
    latency_row = by_metric["latency (StructSlim)"]
    frequency_row = by_metric["frequency (Chilimbi)"]
    # Latency affinity separates the hot-but-cheap pair; counts cannot.
    assert latency_row[1] == "no"
    assert frequency_row[1] == "yes"
    # And the latency-guided layout is at least as fast.
    assert latency_row[3] >= frequency_row[3] - 1e-9
    assert latency_row[3] > 1.0


def test_affinity_guided_beats_maximal_splitting(benchmark):
    table = benchmark.pedantic(
        lambda: run_maximal_split_ablation(scale=1.0), rounds=1, iterations=1
    )
    print_artifact(table.render())

    speedups = {str(row[0]): row[2] for row in table.rows}
    assert speedups["affinity-guided"] > 1.0
    # Maximal splitting tears the co-accessed {x, y, next} apart and
    # loses part (or all) of the win — the Wang et al. critique.
    assert speedups["affinity-guided"] > speedups["maximal"]


def test_prefetcher_absorbs_part_of_the_win(benchmark):
    table = benchmark.pedantic(
        lambda: run_prefetch_ablation(scale=0.5), rounds=1, iterations=1
    )
    print_artifact(table.render())

    speedups = {str(row[0]): row[1] for row in table.rows}
    no_pf = speedups["no prefetch"]
    with_pf = next(v for k, v in speedups.items() if "streamer" in k)
    assert no_pf > 1.0
    # An ideal streamer shrinks but does not erase the benefit.
    assert with_pf <= no_pf + 0.02


def test_cost_model_mlp_robustness(benchmark):
    """The Table 3 conclusions must not hinge on the one free cost-model
    constant (assumed memory-level parallelism): the ART split wins at
    every plausible MLP, shrinking smoothly as overlap hides more of the
    miss latency."""
    from repro.experiments import Table
    from repro.memsim import CostModel, speedup
    from repro.profiler import Monitor
    from repro.workloads import ArtWorkload

    def run():
        # Paper-scale geometry: below ~0.5 the arrays fit the caches
        # they overflow on the testbed and the split has nothing to win.
        workload = ArtWorkload(scale=1.0)
        rows = []
        for mlp in (1.0, 2.0, 4.0):
            monitor = Monitor(cost_model=CostModel(mlp=mlp))
            original = monitor.run_unmonitored(workload.build_original())
            optimized = monitor.run_unmonitored(workload.build_paper_split())
            rows.append((mlp, speedup(original, optimized)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("Ablation: speedup vs assumed memory-level parallelism (ART)",
                  ["MLP", "speedup"])
    for mlp, value in rows:
        table.add_row(mlp, value)
    print_artifact(table.render())

    values = [v for _, v in rows]
    assert all(v > 1.05 for v in values)
    assert values == sorted(values, reverse=True)  # more overlap, less win


def test_replacement_policy_robustness(benchmark):
    """Idealized true-LRU is the simulator's one replacement assumption;
    the split must keep winning under FIFO and random replacement too."""
    from repro.experiments import Table
    from repro.memsim import HierarchyConfig, speedup
    from repro.profiler import Monitor
    from repro.workloads import ArtWorkload

    def run():
        workload = ArtWorkload(scale=1.0)
        rows = []
        for policy in ("lru", "fifo", "random"):
            config = HierarchyConfig(replacement=policy)
            monitor = Monitor()
            original = monitor.run_unmonitored(workload.build_original(),
                                               config=config)
            optimized = monitor.run_unmonitored(workload.build_paper_split(),
                                                config=config)
            rows.append((policy, speedup(original, optimized)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("Ablation: split speedup vs cache replacement policy (ART)",
                  ["policy", "speedup"])
    for policy, value in rows:
        table.add_row(policy, value)
    print_artifact(table.render())

    for policy, value in rows:
        assert value > 1.15, (policy, value)
