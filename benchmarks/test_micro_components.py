"""Microbenchmarks of the substrates themselves (pytest-benchmark).

Unlike the table/figure regenerators these are true repeated-timing
benchmarks: they track the throughput of the components the simulation
pipeline is built from, so performance regressions in the simulator
show up as benchmark regressions rather than mysteriously slow tables.
"""

import random

from repro.binary import LoopMap, find_loops, lower_function
from repro.core import gcd_stride
from repro.memsim import HierarchyConfig, MemoryHierarchy, simulate
from repro.profiler import StreamState
from repro.program import AccessBatch, Interpreter, MemoryAccess
from repro.sampling import PEBSLoadLatencySampler
from repro.workloads import ArtWorkload

from .conftest import BENCH_ENGINE

rng = random.Random(99)

ADDRESSES = [rng.randrange(0, 1 << 24) & ~7 for _ in range(20_000)]


def _trace(bound):
    """The selected engine's trace for ``bound`` (see REPRO_BENCH_ENGINE)."""
    interp = Interpreter(bound)
    return interp.run_batched() if BENCH_ENGINE == "batched" else interp.run()


def test_cache_hierarchy_throughput(benchmark):
    def run():
        hier = MemoryHierarchy(HierarchyConfig(), num_cores=1)
        access = hier.access
        for addr in ADDRESSES:
            access(0, addr, 8, False)
        return hier.l1_misses()

    misses = benchmark(run)
    assert misses > 0


def test_cache_hierarchy_batch_throughput(benchmark):
    sizes = [8] * len(ADDRESSES)

    def run():
        hier = MemoryHierarchy(HierarchyConfig(), num_cores=1)
        hier.access_batch(ADDRESSES, sizes)
        return hier.l1_misses()

    misses = benchmark(run)
    assert misses > 0


def test_interpreter_trace_generation(benchmark):
    workload = ArtWorkload(scale=0.05)
    bound = workload.build_original()

    def run():
        count = 0
        for item in _trace(bound):
            count += len(item) if isinstance(item, AccessBatch) else 1
        return count

    count = benchmark(run)
    assert count > 10_000


def test_sampler_observe_throughput(benchmark):
    accesses = [MemoryAccess(0, 0x400000, addr, 8, False, 1, 0)
                for addr in ADDRESSES]

    def run():
        sampler = PEBSLoadLatencySampler(period=1000, seed=0)
        observe = sampler.observe
        for access in accesses:
            observe(access, 42.0)
        return sampler.sample_count

    count = benchmark(run)
    assert count > 0


def test_sampler_observe_batch_throughput(benchmark):
    bound = ArtWorkload(scale=0.05).build_original()
    hier = MemoryHierarchy(HierarchyConfig(), num_cores=1)
    pairs = [
        (item, hier.access_batch(item.address, item.size))
        for item in Interpreter(bound).run_batched()
        if isinstance(item, AccessBatch)
    ]
    assert pairs, "ART's hot loops should batch"

    def run():
        sampler = PEBSLoadLatencySampler(period=1000, seed=0)
        observe_batch = sampler.observe_batch
        for batch, latencies in pairs:
            observe_batch(batch, latencies)
        return sampler.sample_count

    count = benchmark(run)
    assert count > 0


def test_online_gcd_update_throughput(benchmark):
    def run():
        state = StreamState(key=(0, 0, ("heap", "x")))
        for addr in ADDRESSES:
            state.update(addr, 10.0)
        return state.stride

    benchmark(run)


def test_offline_gcd_stride(benchmark):
    addresses = [i * 64 for i in sorted(rng.sample(range(100_000), 5_000))]
    stride = benchmark(gcd_stride, addresses)
    assert stride % 64 == 0


def test_havlak_on_deep_workload(benchmark):
    bound = ArtWorkload(scale=0.02).build_original()

    def run():
        nest = find_loops(lower_function(bound.program, "main"))
        return len(nest)

    loops = benchmark(run)
    assert loops == len(bound.program.loops())


def test_loopmap_construction(benchmark):
    bound = ArtWorkload(scale=0.02).build_original()
    loop_map = benchmark(LoopMap, bound.program)
    assert len(loop_map) == len(bound.program.loops())


def test_end_to_end_simulation_rate(benchmark):
    workload = ArtWorkload(scale=0.05)
    bound = workload.build_original()

    def run():
        return simulate(_trace(bound),
                        config=HierarchyConfig(), name="art").accesses

    accesses = benchmark.pedantic(run, rounds=3, iterations=1)
    assert accesses > 10_000
