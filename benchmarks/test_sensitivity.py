"""Sampling-period sensitivity sweep (methodology validation).

The paper fixes one sample per 10,000 memory accesses; this study
quantifies the safety margin: advice quality holds while hot streams
keep >= ~10 unique samples (the Eq 4 threshold), and overhead falls
linearly with the period.
"""

import pytest

from repro.experiments import (
    sensitivity_table,
    stable_period_range,
    sweep_sampling_period,
)
from repro.workloads import ArtWorkload

from .conftest import BENCH_SCALE, print_artifact

PERIODS = (127, 509, 2003, 8009, 32003)


def test_art_advice_stability_across_periods(benchmark):
    workload = ArtWorkload(scale=max(0.5, BENCH_SCALE))
    points = benchmark.pedantic(
        lambda: sweep_sampling_period(workload, PERIODS),
        rounds=1, iterations=1,
    )
    print_artifact(sensitivity_table(workload.name, points).render())

    by_period = {p.period: p for p in points}
    # Dense sampling must reproduce Figure 7's split.
    assert by_period[127].plan_matches
    assert by_period[509].plan_matches
    # Advice survives at least into the low thousands.
    assert stable_period_range(points) >= 2003

    # Overhead falls monotonically with the period...
    overheads = [p.overhead_percent for p in points]
    assert overheads == sorted(overheads, reverse=True)
    # ...roughly linearly (x4 period -> ~x4 cheaper), as the cost model
    # predicts for sample-count-dominated overhead.
    assert overheads[0] / overheads[2] == pytest.approx(
        PERIODS[2] / PERIODS[0], rel=0.35
    )

    # Sample starvation explains any failures: whenever advice broke,
    # the hottest stream had fallen below the Eq 4 comfort zone.
    for point in points:
        if not point.plan_matches:
            assert point.max_stream_unique < 30
