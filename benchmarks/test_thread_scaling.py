"""§5.1 scalability: per-thread monitoring with no synchronization.

"To scale the data collection and online analysis of the profiler, we
design the profiler to monitor each thread individually, without any
synchronization." Two measurable consequences:

- every thread contributes samples in proportion to its work (no
  thread starves because another holds a lock), and
- per-eligible-access sampling density is flat across thread counts,
  so the *relative* monitoring cost does not grow as threads are added
  (beyond the modelled per-interrupt perturbation).
"""

import pytest

from repro.experiments import Table
from repro.profiler import Monitor
from repro.workloads import ClompWorkload

from .conftest import print_artifact


def test_monitoring_scales_across_thread_counts(benchmark):
    def run():
        workload = ClompWorkload(scale=0.5)
        rows = []
        for threads in (1, 2, 4, 8):
            monitor = Monitor(sampling_period=workload.recommended_period)
            profiled = monitor.run(workload.build_original(),
                                   num_threads=threads)
            per_thread = [p.sample_count for p in profiled.profiles.values()]
            rows.append((
                threads,
                profiled.sample_count,
                min(per_thread) if per_thread else 0,
                max(per_thread) if per_thread else 0,
                profiled.sample_count / max(1, profiled.metrics.accesses),
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "SS5.1: per-thread sampling across thread counts (CLOMP)",
        ["threads", "samples", "min/thread", "max/thread", "samples/access"],
    )
    for threads, total, lo, hi, density in rows:
        table.add_row(threads, total, lo, hi, f"{density:.5f}")
    print_artifact(table.render())

    # The parallel region's work divides evenly, so worker threads stay
    # balanced. Thread 0 additionally runs CLOMP's serial deposit pass,
    # so it legitimately collects up to ~2x a pure worker's samples —
    # the bound below tolerates exactly that serial-section asymmetry.
    for threads, total, lo, hi, _ in rows:
        if threads > 1:
            assert lo > 0.4 * hi, rows

    # Sampling density (samples per eligible access) is flat across
    # thread counts: collection itself has no serialization.
    densities = [float(r[4]) for r in rows]
    assert max(densities) < 1.5 * min(densities)
