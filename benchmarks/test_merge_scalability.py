"""§5.2 scalability: reduction-tree profile merging.

The paper: "If the number of threads and processes is huge, merging
their profiles can be time consuming. To expedite this process,
StructSlim leverages the reduction tree algorithm to merge all profiles
in parallel." Python timings can't show parallel speedup directly, but
two paper-relevant properties are measurable:

- merge *work* grows near-linearly in the number of profiles (no
  quadratic blowup from repeated re-merging), and
- the tree's *critical path* is logarithmic: with P workers, the wall
  time would be depth x per-merge cost, which we report alongside.
"""

import math
import time

from repro.profiler import ThreadProfile, reduction_tree_merge

from .conftest import print_artifact
from repro.experiments import Table


def synthetic_profile(thread: int, streams: int = 64) -> ThreadProfile:
    profile = ThreadProfile(thread=thread, program="synthetic")
    for k in range(streams):
        stream = profile.stream(0x400000 + k * 16, 0, ("heap", f"obj{k % 8}"))
        base = k * 4096
        for step in range(8):
            stream.update(base + step * 64 + thread * 8, 10.0)
        profile.add_data_latency(("heap", f"obj{k % 8}"), stream.total_latency)
        profile.total_latency += stream.total_latency
        profile.sample_count += stream.sample_count
    return profile


def test_reduction_tree_merge_scales(benchmark):
    counts = (4, 16, 64, 256)
    table = Table(
        "SS5.2: reduction-tree merge across thread counts",
        ["profiles", "merge seconds", "sec/profile", "tree depth"],
    )

    def run():
        rows = []
        for count in counts:
            profiles = [synthetic_profile(t) for t in range(count)]
            start = time.perf_counter()
            merged = reduction_tree_merge(profiles)
            elapsed = time.perf_counter() - start
            assert merged.sample_count == sum(p.sample_count for p in profiles)
            rows.append((count, elapsed, elapsed / count,
                         math.ceil(math.log2(count))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        table.add_row(*row)
    print_artifact(table.render())

    # Near-linear total work: per-profile cost must not grow with the
    # profile count by more than a small factor (quadratic merging
    # would grow it 64x over this sweep).
    per_profile = [r[2] for r in rows]
    assert per_profile[-1] < per_profile[0] * 8

    # Logarithmic critical path: 256 profiles need only 8 tree levels.
    assert rows[-1][3] == 8


def test_merge_throughput(benchmark):
    """Tracked microbenchmark: pairwise merge of two realistic profiles."""
    a = synthetic_profile(0, streams=256)
    b = synthetic_profile(1, streams=256)

    from repro.profiler import merge_pair

    merged = benchmark(merge_pair, a, b)
    assert merged.sample_count == a.sample_count + b.sample_count
