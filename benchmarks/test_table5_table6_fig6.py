"""Tables 5-6 and Figure 6: the ART deep dive (§6.1).

One monitored ART run produces all three artifacts; Table 5's per-field
latency shares and Figure 6's affinities are checked quantitatively
against the paper, Table 6 structurally (same loops, same field sets,
same ordering of the heavy hitters).
"""

import pytest

from repro.experiments import (
    PAPER_TABLE5,
    figure6,
    run_art_analysis,
    table5,
)
from repro.workloads import F1_NEURON

from .conftest import BENCH_SCALE, print_artifact

_CACHE = []


def _analysis():
    if not _CACHE:
        _CACHE.append(run_art_analysis(scale=BENCH_SCALE))
    return _CACHE[0]


def test_table5_field_latency_shares(benchmark):
    analysis = benchmark.pedantic(_analysis, rounds=1, iterations=1)
    print_artifact(table5(analysis).render())

    shares = analysis.field_shares
    # P dominates at ~73%, R is invisible to load sampling.
    assert shares["P"] == pytest.approx(PAPER_TABLE5["P"] / 100, abs=0.08)
    assert shares["R"] == 0.0
    # The minor fields stay minor, in the paper's ordering band.
    for field in ("I", "W", "X", "V", "U", "Q"):
        assert shares[field] == pytest.approx(
            PAPER_TABLE5[field] / 100, abs=0.04
        ), field
    assert abs(sum(shares.values()) - 1.0) < 1e-6


def test_table6_loop_attribution(benchmark):
    analysis = _analysis()
    table = benchmark.pedantic(lambda: analysis.loop_rows, rounds=1,
                               iterations=1)
    print_artifact(table.render())

    rows = {label: (share, fields) for label, share, fields, _, _ in
            (tuple(r) for r in table.rows)}
    # The hottest loop is 615-616 with only P, at >45% (paper 56.57%).
    hottest = max(rows.items(), key=lambda kv: kv[1][0])
    assert hottest[0].startswith("615")
    assert hottest[1][0] > 45
    assert hottest[1][1] == "P"
    # Loop 545-548 touches exactly {U, I}; 559-570 exactly {X, Q}.
    l545 = next(v for k, v in rows.items() if k.startswith("545"))
    assert set(l545[1].split(",")) == {"U", "I"}
    l559 = next(v for k, v in rows.items() if k.startswith("559"))
    assert set(l559[1].split(",")) == {"X", "Q"}
    # All nine paper loops are present.
    assert len(rows) == 9


def test_figure6_affinity_graph(benchmark):
    analysis = _analysis()
    affinities, dot = benchmark.pedantic(
        lambda: figure6(analysis), rounds=1, iterations=1
    )
    print_artifact(affinities.render(), dot)

    # The paper's headline affinities.
    assert analysis.affinity("I", "U") == pytest.approx(0.86, abs=0.12)
    assert analysis.affinity("P", "U") == pytest.approx(0.05, abs=0.05)
    assert analysis.affinity("X", "Q") > 0.9
    # The dot graph is the analyzer's published output format: offset
    # nodes, weighted edges, one cluster per recommended struct.
    assert dot.startswith('graph "f1_layer"')
    assert "subgraph cluster_" in dot
    assert "--" in dot

    # The advice reproduces Figure 7's six structures.
    plan = analysis.analysis.advice.split_plan(F1_NEURON)
    groups = {frozenset(g) for g in plan.groups}
    assert groups == {
        frozenset({"P"}), frozenset({"X", "Q"}), frozenset({"I", "U"}),
        frozenset({"V"}), frozenset({"W"}), frozenset({"R"}),
    }
