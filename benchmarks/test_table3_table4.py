"""Tables 3 and 4: speedups, monitoring overhead, cache-miss reduction.

Both tables are views of the same seven optimization cycles, exactly as
in the paper, so the expensive runs happen once (inside the Table 3
benchmark) and Table 4 renders from the shared results.
"""

import statistics

import pytest

from repro.experiments import run_all, table3, table4

from .conftest import BENCH_ENGINE, BENCH_SCALE, print_artifact

_RESULTS = {}


def _results():
    if not _RESULTS:
        _RESULTS.update(run_all(scale=BENCH_SCALE, engine=BENCH_ENGINE))
    return _RESULTS


#: Sequential benchmarks whose speedups should be modest; NN/ART large.
PAPER_ORDERING_CLAIMS = [
    ("179.ART", 1.2, 1.6),        # paper 1.37
    ("462.libquantum", 1.02, 1.25),  # paper 1.09
    ("TSP", 1.02, 1.25),          # paper 1.09
    ("Mser", 1.0, 1.15),          # paper 1.03
    ("CLOMP 1.2", 1.1, 1.45),     # paper 1.25
    ("Health", 1.05, 1.45),       # paper 1.12
    ("NN", 1.15, 1.6),            # paper 1.33
]


def test_table3_speedups_and_overhead(benchmark):
    results = benchmark.pedantic(_results, rounds=1, iterations=1)
    print_artifact(table3(results).render())

    speedups = {name: r.speedup for name, r in results.items()}
    overheads = {name: r.overhead_percent for name, r in results.items()}

    # Every benchmark must improve, inside a paper-like band.
    for name, low, high in PAPER_ORDERING_CLAIMS:
        assert low <= speedups[name] <= high, (name, speedups[name])

    # The headline claims: ~1.18x average speedup at single-digit
    # average overhead, ART the biggest winner, Mser the smallest.
    assert 1.1 <= statistics.mean(speedups.values()) <= 1.3
    assert statistics.mean(overheads.values()) < 10.0
    assert max(speedups, key=speedups.get) == "179.ART"
    assert min(speedups, key=speedups.get) == "Mser"

    # Parallel monitoring costs more (the paper's CLOMP/Health point).
    assert overheads["CLOMP 1.2"] > 3 * overheads["179.ART"]
    # Sequential benchmarks stay in the 2-3% band.
    for name in ("179.ART", "462.libquantum", "TSP", "Mser"):
        assert overheads[name] < 5.0


def test_table4_cache_miss_reduction(benchmark):
    results = _results()
    table = benchmark.pedantic(lambda: table4(results), rounds=1, iterations=1)
    print_artifact(table.render())

    reductions = {name: r.miss_reduction for name, r in results.items()}

    # NN and Health show the paper's near-total L1/L2 cleanups.
    assert reductions["NN"]["L1"] > 60      # paper 87.2
    assert reductions["NN"]["L2"] > 80      # paper 98.0
    assert reductions["Health"]["L2"] > 50  # paper 90.8
    # ART cuts L1/L2 hard but L3 only marginally (paper 46/51/5.5).
    assert reductions["179.ART"]["L1"] > 30
    assert reductions["179.ART"]["L2"] > 30
    assert reductions["179.ART"]["L3"] < 20
    # libquantum halves L1 misses (paper 49%).
    assert 30 < reductions["462.libquantum"]["L1"] < 70
    # Mser's whole-program reductions are the smallest (paper 8.3/8.4).
    assert reductions["Mser"]["L1"] < 25
    # No benchmark's L1/L2 misses get *worse*.
    for name, r in reductions.items():
        assert r["L1"] >= 0 and r["L2"] >= 0, name
